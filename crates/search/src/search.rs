//! The end-to-end JOIN-GRAPH-SEARCH component (Algorithm 5).
//!
//! The online path is structured as *generate → score → rank → execute* so
//! the two expensive stages (join-graph scoring and view materialization)
//! can fan out on `ver_common::pool` without changing the output:
//! candidate generation is sequential and canonically ordered, scoring and
//! materialization are order-preserving [`ThreadPool::par_map`]s, and the
//! rank comparator is a total order on candidate content ([`rank_order`]).
//! Results are therefore bit-identical for every `threads` value — same
//! views, same [`ViewId`] assignment, same ranked order.

use std::sync::Arc;

use crate::materialize::materialize_join_graph;
use crate::rank::{graph_canon, join_score, rank_order};
use ver_common::error::Result;
use ver_common::fxhash::FxHashSet;
use ver_common::ids::{ColumnRef, ViewId};
use ver_common::pool::ThreadPool;
use ver_engine::view::View;
use ver_index::DiscoveryIndex;
use ver_select::SelectionResult;
use ver_store::catalog::TableCatalog;

/// Tunables for join-graph search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Hop bound ρ (paper default 2).
    pub rho: usize,
    /// Materialise the top-k ranked join candidates. The paper's evaluation
    /// sets k = total join graphs (materialise everything).
    pub k: usize,
    /// Cap on enumerated column combinations.
    pub max_combinations: usize,
    /// Drop materialized views with zero rows (joins that match nothing
    /// carry no information for the user).
    pub drop_empty_views: bool,
    /// Worker threads for candidate scoring and top-k materialization
    /// (`0` = one per available hardware thread; default honours the
    /// `VER_THREADS` environment variable). Output is identical for every
    /// value.
    pub threads: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            rho: 2,
            k: usize::MAX,
            max_combinations: 100_000,
            drop_empty_views: true,
            threads: ver_common::pool::default_threads(),
        }
    }
}

/// Search-space statistics matching the paper's reporting
/// (Figs. 5, 6, 8b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Column combinations enumerated.
    pub combinations: usize,
    /// Combinations skipped by the non-joinable cache.
    pub skipped_by_cache: usize,
    /// Joinable table groups ("No. of Joinable Groups").
    pub joinable_groups: usize,
    /// Join graphs across groups ("No. of Join Graphs").
    pub join_graphs: usize,
    /// Materialised candidate PJ-views ("No. of Generated Views").
    pub views: usize,
}

/// Result of join-graph search: materialized views plus statistics.
#[derive(Debug)]
pub struct SearchOutput {
    /// Candidate PJ-views with assigned [`ViewId`]s, ranked by join score.
    pub views: Vec<View>,
    /// Search-space statistics.
    pub stats: SearchStats,
    /// Stage wall times: `jgs` (enumeration + ranking) and `materialize`
    /// (plan execution) — the JGS/M split of Fig. 4b.
    pub timer: ver_common::timer::PhaseTimer,
}

/// One deduplicated (join graph, projection) execution candidate.
///
/// The projection is shared (`Arc`) across all graphs of its combination
/// instead of cloned per graph, and the canonical edge form is kept
/// alongside because it serves twice: dedup key at generation time,
/// deterministic tie-breaker at rank time.
struct Candidate {
    graph: ver_index::JoinGraph,
    projection: Arc<[ColumnRef]>,
    canon: Vec<(u32, u32)>,
}

/// Dedup key: canonical edge form + projection (content-hashed through the
/// `Arc`).
type CandidateKey = (Vec<(u32, u32)>, Arc<[ColumnRef]>);

/// Pair each combination with each of its group's join graphs, deduping
/// identical (graph, projection) pairs arising from different orders.
/// Sequential and input-order deterministic — the fan-out stages downstream
/// rely on this producing one canonical candidate list.
fn collect_candidates(
    catalog: &TableCatalog,
    enumeration: &crate::enumerate::Enumeration,
) -> Result<Vec<Candidate>> {
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut seen: FxHashSet<CandidateKey> = FxHashSet::default();
    for (combo, gi) in &enumeration.combinations {
        let projection: Arc<[ColumnRef]> = combo
            .columns
            .iter()
            .map(|&c| catalog.column_ref(c))
            .collect::<Result<Vec<_>>>()?
            .into();
        for graph in &enumeration.groups[*gi].1 {
            let canon = graph_canon(graph);
            // Arc clones are refcount bumps; the column list itself is
            // built once per combination.
            if seen.insert((canon.clone(), projection.clone())) {
                candidates.push(Candidate {
                    graph: graph.clone(),
                    projection: projection.clone(),
                    canon,
                });
            }
        }
    }
    Ok(candidates)
}

/// Run Algorithm 5: enumerate combinations, resolve join graphs, rank, and
/// materialise the top-k candidate PJ-views.
pub fn join_graph_search(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    selection: &SelectionResult,
    config: &SearchConfig,
) -> Result<SearchOutput> {
    join_graph_search_cached(catalog, index, selection, config, None)
}

/// [`join_graph_search`] with optional cross-query caches.
///
/// When `caches` is provided, join-graph scores are memoized by canonical
/// edge form and materialized views are served from the LRU keyed by the
/// candidate's execution form (see [`crate::cache`]). Output is
/// **bit-identical** to the uncached path for any cache state — a hit
/// returns exactly what the miss would compute, because both values are
/// pure functions of the immutable index and catalog. `ver-serve` threads
/// one [`crate::cache::SearchCaches`] through every query of a long-lived
/// engine.
pub fn join_graph_search_cached(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    selection: &SelectionResult,
    config: &SearchConfig,
    caches: Option<&crate::cache::SearchCaches>,
) -> Result<SearchOutput> {
    let mut timer = ver_common::timer::PhaseTimer::new();
    let pool = ThreadPool::new(config.threads);
    let jgs_start = std::time::Instant::now();
    let enumeration = crate::enumerate::enumerate_combinations(
        index,
        selection,
        config.rho,
        config.max_combinations,
    );

    let mut stats = SearchStats {
        combinations: enumeration.total_combinations,
        skipped_by_cache: enumeration.skipped_by_cache,
        joinable_groups: enumeration.joinable_group_count(),
        join_graphs: enumeration.join_graph_count(),
        views: 0,
    };

    let candidates = collect_candidates(catalog, &enumeration)?;

    // Score in parallel (order-preserving), then rank by the content-based
    // total order: score desc, canonical edges asc, projection asc. The
    // projection tail makes the order total even across candidates sharing
    // a graph, so ranked output never depends on generation order.
    let scores = pool.par_map(&candidates, |c| match caches {
        Some(cs) => cs.score_or_compute(&c.canon, || join_score(index, &c.graph)),
        None => join_score(index, &c.graph),
    });
    let mut scored: Vec<(f64, Candidate)> = scores.into_iter().zip(candidates).collect();
    scored.sort_by(|a, b| {
        rank_order(a.0, &a.1.canon, b.0, &b.1.canon)
            .then_with(|| a.1.projection.cmp(&b.1.projection))
    });
    scored.truncate(config.k);
    timer.add("jgs", jgs_start.elapsed());

    // Materialise the top-k in parallel; per-candidate failures propagate
    // as the first error in rank order. Ids are assigned sequentially
    // afterwards so empty-view dropping cannot race id assignment.
    let mat_start = std::time::Instant::now();
    let materialized: Vec<Result<View>> = pool.par_map(&scored, |(score, cand)| match caches {
        Some(cs) => cs.view_or_materialize(
            crate::cache::view_key(&cand.graph, &cand.projection),
            || materialize_join_graph(catalog, index, &cand.graph, &cand.projection, *score),
        ),
        None => materialize_join_graph(catalog, index, &cand.graph, &cand.projection, *score),
    });
    let mut views = Vec::with_capacity(materialized.len());
    for result in materialized {
        let mut view = result?;
        if config.drop_empty_views && view.row_count() == 0 {
            continue;
        }
        view.id = ViewId(views.len() as u32);
        views.push(view);
    }
    timer.add("materialize", mat_start.elapsed());
    stats.views = views.len();
    Ok(SearchOutput {
        views,
        stats,
        timer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_qbe::query::{ExampleQuery, QueryColumn};
    use ver_select::{column_selection, SelectionConfig};
    use ver_store::table::TableBuilder;

    /// Two "state fact" tables joinable with a states dimension — a shape
    /// that yields multiple candidate views for the same query.
    fn setup() -> (TableCatalog, DiscoveryIndex) {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..30).map(|i| format!("st{i}")).collect();

        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("A{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("pop1", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("pop2", &["state", "pop"]);
        for (i, s) in states.iter().enumerate().take(25) {
            b.push_row(vec![Value::text(s.clone()), Value::Int(2000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        (cat, idx)
    }

    fn run(
        cat: &TableCatalog,
        idx: &DiscoveryIndex,
        q: &ExampleQuery,
        config: &SearchConfig,
    ) -> SearchOutput {
        let sel = column_selection(
            idx,
            q,
            &SelectionConfig {
                theta: usize::MAX,
                ..Default::default()
            },
        );
        join_graph_search(cat, idx, &sel, config).unwrap()
    }

    #[test]
    fn produces_ranked_views_with_stats() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["A1", "A2"]),
            QueryColumn::of_strs(&["1001", "1002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(out.stats.joinable_groups >= 1);
        assert!(out.stats.views >= 1);
        assert_eq!(out.views.len(), out.stats.views);
        // Ranked: scores non-increasing.
        let scores: Vec<f64> = out.views.iter().map(|v| v.provenance.join_score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        // Ids assigned sequentially.
        assert!(out
            .views
            .iter()
            .enumerate()
            .all(|(i, v)| v.id == ViewId(i as u32)));
    }

    #[test]
    fn ambiguous_state_query_generates_multiple_views() {
        let (cat, idx) = setup();
        // "state" examples match 3 columns; pop examples match pop1 and pop2.
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(
            out.stats.views >= 2,
            "ambiguity should produce multiple candidate views, got {}",
            out.stats.views
        );
    }

    #[test]
    fn top_k_truncates_materialisation() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let all = run(&cat, &idx, &q, &SearchConfig::default());
        let one = run(
            &cat,
            &idx,
            &q,
            &SearchConfig {
                k: 1,
                ..Default::default()
            },
        );
        assert!(all.stats.views > 1);
        assert_eq!(one.stats.views, 1);
        // The kept view is the top-ranked one.
        assert_eq!(
            one.views[0].provenance.join_score,
            all.views[0].provenance.join_score
        );
    }

    #[test]
    fn empty_selection_gives_empty_output() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![QueryColumn::of_strs(&["missing-value"])]).unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert_eq!(out.stats.views, 0);
        assert!(out.views.is_empty());
    }

    #[test]
    fn single_table_query_materialises_projection_only_view() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["A1"]),
            QueryColumn::of_strs(&["st1"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(out
            .views
            .iter()
            .any(|v| v.provenance.hops() == 0 && v.attribute_names() == vec!["iata", "state"]));
    }

    #[test]
    fn provenance_links_views_to_join_graphs() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "1002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        for v in &out.views {
            assert_eq!(v.provenance.projection.len(), 2);
            assert_eq!(
                v.provenance.source_tables.len(),
                v.provenance.hops() + 1,
                "tree: tables = edges + 1"
            );
        }
    }

    #[test]
    fn cached_search_is_bit_identical_to_uncached() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = column_selection(
            &idx,
            &q,
            &SelectionConfig {
                theta: usize::MAX,
                ..Default::default()
            },
        );
        let cfg = SearchConfig::default();
        let base = join_graph_search(&cat, &idx, &sel, &cfg).unwrap();

        let caches = crate::cache::SearchCaches::new(64);
        // Three passes over the same caches: cold, warm, warm.
        for pass in 0..3 {
            let out = join_graph_search_cached(&cat, &idx, &sel, &cfg, Some(&caches)).unwrap();
            assert_eq!(out.stats, base.stats, "pass {pass}");
            assert_eq!(out.views.len(), base.views.len());
            for (a, b) in out.views.iter().zip(&base.views) {
                assert!(a.same_contents(b), "pass {pass}: {} differs", a.id);
            }
        }
        // The warm passes actually hit.
        assert!(caches.view_stats().hits > 0, "no view-cache hits");
        assert!(caches.score_stats().hits > 0, "no score-memo hits");
        assert!(caches.view_stats().misses > 0);
    }

    #[test]
    fn thread_counts_produce_identical_search_output() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let base = run(
            &cat,
            &idx,
            &q,
            &SearchConfig {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [2usize, 4, 0] {
            let par = run(
                &cat,
                &idx,
                &q,
                &SearchConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(par.stats, base.stats, "threads={threads}");
            assert_eq!(par.views.len(), base.views.len());
            for (a, b) in par.views.iter().zip(&base.views) {
                assert!(a.same_contents(b), "threads={threads}: {} differs", a.id);
            }
        }
    }
}
