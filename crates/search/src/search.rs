//! The end-to-end JOIN-GRAPH-SEARCH component (Algorithm 5).
//!
//! The online path is structured as *generate → score → rank → execute* so
//! the two expensive stages (join-graph scoring and view materialization)
//! can fan out on `ver_common::pool` without changing the output:
//! candidate generation is sequential and canonically ordered, scoring is
//! an order-preserving [`ThreadPool::par_map`], the rank comparator is a
//! total order on candidate content ([`rank_order`]), and the top-k
//! candidates materialise over the shared sub-join DAG
//! ([`MaterializePlanner::plan_batch`]) whose level-wise fan-out is
//! likewise order-preserving. Results are therefore bit-identical for
//! every `threads` value — same views, same [`ViewId`] assignment, same
//! ranked order — and identical between the batched DAG executor and the
//! independent per-candidate path ([`SearchConfig::dag_materialize`]).
//!
//! Entry point: build a [`SearchContext`] over the catalog and index, then
//! call [`SearchContext::search`]. The pre-PR-6 free functions
//! [`join_graph_search`] / [`join_graph_search_cached`] remain as
//! deprecated shims over it.

use std::sync::Arc;

use crate::materialize::{MaterializePlanner, MaterializeStats};
use crate::rank::{graph_canon, join_score, rank_order};
use ver_common::budget::QueryBudget;
use ver_common::error::{Result, VerError};
use ver_common::fxhash::FxHashSet;
use ver_common::ids::{ColumnRef, TableId, ViewId};
use ver_common::pool::ThreadPool;
use ver_engine::view::View;
use ver_index::DiscoveryIndex;
use ver_select::SelectionResult;
use ver_store::catalog::TableCatalog;

/// Tunables for join-graph search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Hop bound ρ (paper default 2).
    pub rho: usize,
    /// Materialise the top-k ranked join candidates. The paper's evaluation
    /// sets k = total join graphs (materialise everything). Candidates
    /// ranked below k are never planned or executed — the bounded top-k
    /// pruning the batched materializer relies on.
    pub k: usize,
    /// Cap on enumerated column combinations.
    pub max_combinations: usize,
    /// Drop materialized views with zero rows (joins that match nothing
    /// carry no information for the user).
    pub drop_empty_views: bool,
    /// Worker threads for candidate scoring and top-k materialization
    /// (`0` = one per available hardware thread; default honours the
    /// `VER_THREADS` environment variable). Output is identical for every
    /// value. Ignored when the [`SearchContext`] carries an explicit pool.
    pub threads: usize,
    /// Materialise the top-k over the shared sub-join DAG (default), or
    /// independently per candidate when `false`. Both paths produce
    /// bit-identical output; the independent path is kept as the reference
    /// arm for the equivalence tests and the `materialize_dag` bench
    /// section.
    pub dag_materialize: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            rho: 2,
            k: usize::MAX,
            max_combinations: 100_000,
            drop_empty_views: true,
            threads: ver_common::pool::default_threads(),
            dag_materialize: true,
        }
    }
}

/// Search-space statistics matching the paper's reporting
/// (Figs. 5, 6, 8b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Column combinations enumerated.
    pub combinations: usize,
    /// Combinations skipped by the non-joinable cache.
    pub skipped_by_cache: usize,
    /// Joinable table groups ("No. of Joinable Groups").
    pub joinable_groups: usize,
    /// Join graphs across groups ("No. of Join Graphs").
    pub join_graphs: usize,
    /// Materialised candidate PJ-views ("No. of Generated Views").
    pub views: usize,
}

/// Result of join-graph search: materialized views plus statistics.
#[derive(Debug)]
pub struct SearchOutput {
    /// Candidate PJ-views with assigned [`ViewId`]s, ranked by join score.
    pub views: Vec<View>,
    /// Search-space statistics.
    pub stats: SearchStats,
    /// Shared sub-join DAG counters for the candidates this query batched
    /// (zeroed on the independent path and for cache-served candidates).
    pub dag: MaterializeStats,
    /// Stage wall times: `jgs` (enumeration + ranking) and `materialize`
    /// (plan execution) — the JGS/M split of Fig. 4b.
    pub timer: ver_common::timer::PhaseTimer,
    /// `true` when a [`QueryBudget`] trimmed the output (deadline tripped
    /// mid-stage, a candidate/view cap bit, or a worker panicked and its
    /// candidate was skipped). `views` then holds the best-ranked views
    /// that *did* complete, still in rank order. Always `false` for an
    /// unlimited budget on a healthy run.
    pub partial: bool,
}

/// Everything join-graph search reads, bundled as one borrowing context:
/// the immutable catalog and discovery index, optional cross-query
/// [`SearchCaches`], and an optional pre-resolved worker pool.
///
/// ```
/// # use ver_search::SearchContext;
/// # fn demo(catalog: &ver_store::catalog::TableCatalog,
/// #         index: &ver_index::DiscoveryIndex,
/// #         caches: &ver_search::SearchCaches,
/// #         selection: &ver_select::SelectionResult,
/// #         config: &ver_search::SearchConfig)
/// #         -> ver_common::error::Result<()> {
/// let out = SearchContext::new(catalog, index)
///     .with_caches(caches)
///     .search(selection, config)?;
/// # let _ = out; Ok(())
/// # }
/// ```
///
/// When `caches` is set, join-graph scores are memoized by canonical edge
/// form and materialized views are served from the LRU keyed by the
/// candidate's linearised plan (see [`crate::cache`]). Output is
/// **bit-identical** to the uncached path for any cache state — a hit
/// returns exactly what the miss would compute, because both values are
/// pure functions of the immutable index and catalog. `ver-serve` threads
/// one [`SearchCaches`] through every query of a long-lived engine.
///
/// When `pool` is set it overrides `config.threads`; otherwise a pool is
/// resolved per call. Either way the output is thread-count independent.
///
/// [`SearchCaches`]: crate::cache::SearchCaches
#[derive(Clone, Copy)]
pub struct SearchContext<'a> {
    catalog: &'a TableCatalog,
    index: &'a DiscoveryIndex,
    caches: Option<&'a crate::cache::SearchCaches>,
    pool: Option<ThreadPool>,
    budget: QueryBudget,
}

impl<'a> SearchContext<'a> {
    /// Context over an immutable catalog + index, no caches, per-call pool,
    /// unlimited budget.
    pub fn new(catalog: &'a TableCatalog, index: &'a DiscoveryIndex) -> Self {
        SearchContext {
            catalog,
            index,
            caches: None,
            pool: None,
            budget: QueryBudget::none(),
        }
    }

    /// Attach cross-query caches (hits stay bit-identical to misses).
    pub fn with_caches(mut self, caches: &'a crate::cache::SearchCaches) -> Self {
        self.caches = Some(caches);
        self
    }

    /// Use a pre-resolved worker pool instead of `config.threads`.
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attach a per-query [`QueryBudget`]: a wall-clock deadline checked
    /// cooperatively at every stage boundary plus optional candidate/view
    /// caps. On exhaustion the search degrades instead of failing — it
    /// keeps whatever ranked views completed and sets
    /// [`SearchOutput::partial`]. The default (unlimited) budget never
    /// reads the clock, keeping budget-free runs bit-identical to
    /// pre-budget builds.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Run Algorithm 5: enumerate combinations, resolve join graphs, rank,
    /// and materialise the top-k candidate PJ-views — batched over the
    /// shared sub-join DAG unless [`SearchConfig::dag_materialize`] is off.
    pub fn search(
        &self,
        selection: &SelectionResult,
        config: &SearchConfig,
    ) -> Result<SearchOutput> {
        let (ranked, mut stats, dag, timer, partial) =
            self.search_filtered(selection, config, None)?;
        let mut views = Vec::with_capacity(ranked.len());
        for (i, sv) in ranked.into_iter().enumerate() {
            let mut view = sv.view;
            view.id = ViewId(i as u32);
            views.push(view);
        }
        stats.views = views.len();
        Ok(SearchOutput {
            views,
            stats,
            dag,
            timer,
            partial,
        })
    }

    /// Run one shard's slice of the scatter/gather search (determinism
    /// invariant 11).
    ///
    /// Every shard performs the **identical** global computation up to the
    /// top-k cut — enumeration, candidate collection, scoring of *all*
    /// candidates (a shared [`SearchCaches`] score memo makes the duplicate
    /// scoring cheap), the content-based global sort, and the `k` /
    /// view-cap truncation — and then materialises only the candidates it
    /// *owns*: a candidate belongs to
    /// `shard_of_table(min TableId of its projection, shard_count)`, the
    /// same table-anchored hash that partitions the index. Because
    /// ownership partitions the globally-cut candidate list exactly,
    /// re-merging every shard's output through the same rank comparator
    /// ([`merge_shard_outputs`]) reproduces the single-engine
    /// [`SearchContext::search`] result bit-for-bit, for every shard
    /// count.
    ///
    /// [`SearchCaches`]: crate::cache::SearchCaches
    pub fn search_shard(
        &self,
        selection: &SelectionResult,
        config: &SearchConfig,
        shard: usize,
        shard_count: usize,
    ) -> Result<ShardSearchOutput> {
        assert!(
            shard < shard_count,
            "shard {shard} out of range for {shard_count} shards"
        );
        // Whole-leg fault point: sits BEFORE the per-candidate isolation,
        // so an armed panic here kills this entire shard — the caller's
        // scatter loop must drop the leg and degrade to a partial merge.
        ver_common::fault::hit(ver_common::fault::points::SEARCH_SHARD)?;
        let (views, mut stats, dag, timer, partial) =
            self.search_filtered(selection, config, Some((shard, shard_count)))?;
        stats.views = views.len();
        Ok(ShardSearchOutput {
            shard,
            shard_count,
            views,
            stats,
            dag,
            timer,
            partial,
        })
    }

    /// Shared body of [`search`](Self::search) and
    /// [`search_shard`](Self::search_shard): the full generate → score →
    /// rank pipeline, with materialization optionally restricted to the
    /// candidates owned by one shard. Returns ranked views still carrying
    /// their rank keys (no [`ViewId`]s assigned — the caller finalises
    /// ids so the sharded merge can renumber globally).
    fn search_filtered(
        &self,
        selection: &SelectionResult,
        config: &SearchConfig,
        owner: Option<(usize, usize)>,
    ) -> Result<(
        Vec<ShardView>,
        SearchStats,
        MaterializeStats,
        ver_common::timer::PhaseTimer,
        bool,
    )> {
        let mut timer = ver_common::timer::PhaseTimer::new();
        let pool = self.pool.unwrap_or_else(|| ThreadPool::new(config.threads));
        let jgs_start = std::time::Instant::now();
        let enumeration = crate::enumerate::enumerate_combinations(
            self.index,
            selection,
            config.rho,
            config.max_combinations,
        );

        let stats = SearchStats {
            combinations: enumeration.total_combinations,
            skipped_by_cache: enumeration.skipped_by_cache,
            joinable_groups: enumeration.joinable_group_count(),
            join_graphs: enumeration.join_graph_count(),
            views: 0,
        };

        let mut partial = false;
        let mut candidates = collect_candidates(self.catalog, &enumeration)?;
        // Budget: candidate cap. Generation order is canonical, so the
        // truncation is deterministic for a fixed cap.
        let cand_cap = self.budget.cap_candidates(candidates.len());
        if cand_cap < candidates.len() {
            candidates.truncate(cand_cap);
            partial = true;
        }

        // Score in parallel (order-preserving), then rank by the
        // content-based total order: score desc, canonical edges asc,
        // projection asc. The projection tail makes the order total even
        // across candidates sharing a graph, so ranked output never depends
        // on generation order. A candidate whose scoring trips the deadline
        // or panics is dropped (degrading to a partial result); any other
        // error is a hard failure.
        let scores = pool.try_par_map(&candidates, |c| {
            ver_common::fault::hit(ver_common::fault::points::SEARCH_SCORE)?;
            self.budget.check("search.score")?;
            Ok(match self.caches {
                Some(cs) => cs.score_or_compute(&c.canon, || join_score(self.index, &c.graph)),
                None => join_score(self.index, &c.graph),
            })
        });
        let mut scored: Vec<(f64, Candidate)> = Vec::with_capacity(candidates.len());
        for (score, candidate) in scores.into_iter().zip(candidates) {
            match score {
                Ok(s) => scored.push((s, candidate)),
                Err(VerError::DeadlineExceeded(_)) | Err(VerError::Internal(_)) => partial = true,
                Err(e) => return Err(e),
            }
        }
        scored.sort_by(|a, b| {
            rank_order(a.0, &a.1.canon, b.0, &b.1.canon)
                .then_with(|| a.1.projection.cmp(&b.1.projection))
        });
        // Bounded top-k pruning: everything below the cut is dropped before
        // any planning or execution happens. The budget's view cap tightens
        // the cut deterministically.
        let k = config.k.min(scored.len());
        let keep = self.budget.cap_views(k);
        if keep < k {
            partial = true;
        }
        scored.truncate(keep);
        // Scatter/gather shard filter: every shard computed the identical
        // globally-cut candidate list above; each materialises only the
        // candidates it owns. Ownership partitions the list exactly, so
        // the per-shard outputs merge back into the unsharded ranking.
        if let Some((shard, count)) = owner {
            scored.retain(|(_, c)| candidate_shard(c, count) == shard);
        }
        timer.add("jgs", jgs_start.elapsed());

        // Materialise the top-k; per-candidate failures propagate as the
        // first error in rank order. Ids are assigned sequentially
        // afterwards so empty-view dropping cannot race id assignment.
        let mat_start = std::time::Instant::now();
        let planner = MaterializePlanner::new(self.catalog);
        // Linearisation depends only on (graph, base table), and the rank
        // order's canonical-edge + projection tiebreaks put candidates
        // sharing a graph next to each other — so a run of equal graphs
        // with the same base reuses the previous BFS verbatim instead of
        // re-linearising each of the top-k candidates.
        let mut prev: Option<(
            &ver_index::JoinGraph,
            TableId,
            Vec<ver_engine::plan::JoinStep>,
        )> = None;
        let mut plans: Vec<Result<ver_engine::plan::PjPlan>> = scored
            .iter()
            .map(|(_, c)| {
                let Some(base) = c.projection.first().map(|p| p.table) else {
                    // Empty projection: let the planner surface its error.
                    return planner.plan(&c.graph, &c.projection);
                };
                if let Some((g, b, joins)) = &prev {
                    if *b == base && *g == &c.graph {
                        return Ok(ver_engine::plan::PjPlan {
                            base,
                            joins: joins.clone(),
                            projection: c.projection.to_vec(),
                        });
                    }
                }
                let plan = planner.plan(&c.graph, &c.projection)?;
                prev = Some((&c.graph, plan.base, plan.joins.clone()));
                Ok(plan)
            })
            .collect();

        let mut dag = MaterializeStats::default();
        let materialized: Vec<Result<View>> = if config.dag_materialize {
            // Partition into cache hits and the batch of misses, execute
            // the misses over the shared DAG, then reassemble in rank
            // order.
            let mut results: Vec<Option<Result<View>>> = (0..scored.len()).map(|_| None).collect();
            let mut miss: Vec<usize> = Vec::new();
            for (i, plan) in plans.iter().enumerate() {
                match plan {
                    Err(e) => results[i] = Some(Err(e.clone())),
                    Ok(plan) => {
                        let hit = self.caches.and_then(|cs| {
                            cs.view_get(&crate::cache::view_key(plan, &scored[i].1.projection))
                        });
                        match hit {
                            Some(view) => results[i] = Some(Ok(view)),
                            None => miss.push(i),
                        }
                    }
                }
            }
            // Batch the misses by value. Without caches the plan is moved
            // out of `plans` (nothing reads it again); with caches it is
            // cloned because `view_insert` needs it for the key afterwards.
            let batch: Vec<(ver_engine::plan::PjPlan, f64)> = miss
                .iter()
                .map(|&i| {
                    let plan = match self.caches {
                        Some(_) => plans[i].as_ref().expect("misses are Ok").clone(),
                        None => std::mem::replace(
                            &mut plans[i],
                            Err(ver_common::error::VerError::InvalidQuery(
                                "plan consumed by batch".into(),
                            )),
                        )
                        .expect("misses are Ok"),
                    };
                    (plan, scored[i].0)
                })
                .collect();
            let (views, batch_stats) = planner.plan_batch_budgeted(&batch, pool, &self.budget);
            dag = batch_stats;
            for (&i, view) in miss.iter().zip(views) {
                if let (Some(cs), Ok(view), Ok(plan)) = (self.caches, &view, &plans[i]) {
                    cs.view_insert(
                        crate::cache::view_key(plan, &scored[i].1.projection),
                        view.clone(),
                    );
                }
                results[i] = Some(view);
            }
            results
                .into_iter()
                .map(|r| r.expect("every candidate resolved"))
                .collect()
        } else {
            // Independent reference path: one full executor run per
            // candidate, exactly the pre-DAG behaviour (plus the same
            // per-candidate deadline boundary and panic isolation as the
            // DAG arm, so both degrade identically under pressure).
            let idx: Vec<usize> = (0..scored.len()).collect();
            pool.try_par_map(&idx, |&i| {
                self.budget.check("materialize.view")?;
                let plan = match &plans[i] {
                    Err(e) => return Err(e.clone()),
                    Ok(plan) => plan,
                };
                match self.caches {
                    Some(cs) => cs.view_or_materialize(
                        crate::cache::view_key(plan, &scored[i].1.projection),
                        || ver_engine::exec::execute_plan(self.catalog, plan, scored[i].0),
                    ),
                    None => ver_engine::exec::execute_plan(self.catalog, plan, scored[i].0),
                }
            })
        };

        drop(plans);
        let mut views = Vec::with_capacity(materialized.len());
        for (result, (score, candidate)) in materialized.into_iter().zip(scored) {
            // Graceful degradation: a candidate that ran out of deadline or
            // whose worker panicked is skipped (the ranked views that did
            // complete are still returned, flagged partial); any other
            // error — e.g. a genuine I/O failure — is a hard failure for
            // the whole query.
            let view = match result {
                Ok(view) => view,
                Err(VerError::DeadlineExceeded(_)) | Err(VerError::Internal(_)) => {
                    partial = true;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if config.drop_empty_views && view.row_count() == 0 {
                continue;
            }
            views.push(ShardView {
                score,
                canon: candidate.canon,
                projection: candidate.projection,
                view,
            });
        }
        timer.add("materialize", mat_start.elapsed());
        Ok((views, stats, dag, timer, partial))
    }
}

/// Owning shard of a search candidate: the [`ver_index::shard_of_table`]
/// hash of the smallest `TableId` in its projection. Anchoring candidate
/// ownership to *table* sharding keeps query-time scatter aligned with
/// build-time index partitioning — the shard that owns a candidate's lead
/// table owns its index slices too. Projection-less candidates (which the
/// planner rejects anyway) fall to shard 0 so the error surfaces on
/// exactly one shard.
fn candidate_shard(candidate: &Candidate, shard_count: usize) -> usize {
    match candidate.projection.iter().map(|p| p.table).min() {
        Some(table) => ver_index::shard_of_table(table, shard_count),
        None => 0,
    }
}

/// One ranked, materialised view of a shard's output, still carrying the
/// rank key ([`rank_order`]'s `(score, canon)` plus the projection
/// tie-break) that [`merge_shard_outputs`] merges through. The view's
/// [`ViewId`] is not final until the merge renumbers globally.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// Join score of the candidate (rank key, primary, descending).
    pub score: f64,
    /// Canonical edge form of the join graph (rank key, secondary).
    pub canon: Vec<(u32, u32)>,
    /// Projection columns (rank key, final tie-break).
    pub projection: Arc<[ColumnRef]>,
    /// The materialised view.
    pub view: View,
}

/// Output of [`SearchContext::search_shard`]: this shard's owned slice of
/// the global ranking, plus the same stats/budget surface as
/// [`SearchOutput`].
#[derive(Debug)]
pub struct ShardSearchOutput {
    /// Which shard produced this output.
    pub shard: usize,
    /// Total shards in the scatter.
    pub shard_count: usize,
    /// Owned views in global rank order (a subsequence of the unsharded
    /// ranking).
    pub views: Vec<ShardView>,
    /// Search-space statistics. The enumeration counters are global (every
    /// shard enumerates identically); `views` counts only owned views.
    pub stats: SearchStats,
    /// This shard's sub-join DAG counters.
    pub dag: MaterializeStats,
    /// This shard's stage wall times.
    pub timer: ver_common::timer::PhaseTimer,
    /// `true` when this shard's slice was trimmed by the budget.
    pub partial: bool,
}

/// Gather step of the sharded search: merge per-shard outputs back into
/// one [`SearchOutput`] through the content-based total order, then assign
/// [`ViewId`]s sequentially.
///
/// Each shard's list is already globally rank-ordered and ownership
/// partitions the candidate space, so the merge is a pure k-way merge with
/// no dedup — implemented as a sort by the same comparator, which is exact
/// because rank keys are unique across shards. With every shard present
/// and healthy the result is **bit-identical** to the single-engine
/// [`SearchContext::search`] run (invariant 11). A missing shard (caller
/// dropped a panicked or deadline-tripped scatter leg) degrades to a
/// partial result: pass `complete = false` and the merged output is
/// flagged [`SearchOutput::partial`], never an error. Enumeration stats
/// come from the first output (identical on every shard); DAG counters
/// and timers accumulate across shards.
pub fn merge_shard_outputs(outputs: Vec<ShardSearchOutput>, complete: bool) -> SearchOutput {
    let mut stats = outputs.first().map(|o| o.stats).unwrap_or_default();
    let mut dag = MaterializeStats::default();
    let mut timer = ver_common::timer::PhaseTimer::new();
    let mut partial = !complete;
    let mut merged: Vec<ShardView> =
        Vec::with_capacity(outputs.iter().map(|o| o.views.len()).sum());
    for out in outputs {
        partial |= out.partial;
        dag.accumulate(out.dag);
        timer.merge(&out.timer);
        merged.extend(out.views);
    }
    merged.sort_by(|a, b| {
        rank_order(a.score, &a.canon, b.score, &b.canon)
            .then_with(|| a.projection.cmp(&b.projection))
    });
    let mut views = Vec::with_capacity(merged.len());
    for (i, sv) in merged.into_iter().enumerate() {
        let mut view = sv.view;
        view.id = ViewId(i as u32);
        views.push(view);
    }
    stats.views = views.len();
    SearchOutput {
        views,
        stats,
        dag,
        timer,
        partial,
    }
}

/// One deduplicated (join graph, projection) execution candidate.
///
/// The projection is shared (`Arc`) across all graphs of its combination
/// instead of cloned per graph, and the canonical edge form is kept
/// alongside because it serves twice: dedup key at generation time,
/// deterministic tie-breaker at rank time.
struct Candidate {
    graph: ver_index::JoinGraph,
    projection: Arc<[ColumnRef]>,
    canon: Vec<(u32, u32)>,
}

/// Dedup key: canonical edge form + projection (content-hashed through the
/// `Arc`).
type CandidateKey = (Vec<(u32, u32)>, Arc<[ColumnRef]>);

/// Pair each combination with each of its group's join graphs, deduping
/// identical (graph, projection) pairs arising from different orders.
/// Sequential and input-order deterministic — the fan-out stages downstream
/// rely on this producing one canonical candidate list.
fn collect_candidates(
    catalog: &TableCatalog,
    enumeration: &crate::enumerate::Enumeration,
) -> Result<Vec<Candidate>> {
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut seen: FxHashSet<CandidateKey> = FxHashSet::default();
    for (combo, gi) in &enumeration.combinations {
        let projection: Arc<[ColumnRef]> = combo
            .columns
            .iter()
            .map(|&c| catalog.column_ref(c))
            .collect::<Result<Vec<_>>>()?
            .into();
        for graph in &enumeration.groups[*gi].1 {
            let canon = graph_canon(graph);
            // Arc clones are refcount bumps; the column list itself is
            // built once per combination.
            if seen.insert((canon.clone(), projection.clone())) {
                candidates.push(Candidate {
                    graph: graph.clone(),
                    projection: projection.clone(),
                    canon,
                });
            }
        }
    }
    Ok(candidates)
}

/// Run Algorithm 5: enumerate combinations, resolve join graphs, rank, and
/// materialise the top-k candidate PJ-views.
#[deprecated(
    since = "0.1.0",
    note = "use `SearchContext::new(catalog, index).search(selection, config)`"
)]
pub fn join_graph_search(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    selection: &SelectionResult,
    config: &SearchConfig,
) -> Result<SearchOutput> {
    SearchContext::new(catalog, index).search(selection, config)
}

/// [`join_graph_search`] with optional cross-query caches.
#[deprecated(
    since = "0.1.0",
    note = "use `SearchContext::new(catalog, index).with_caches(caches).search(selection, config)`"
)]
pub fn join_graph_search_cached(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    selection: &SelectionResult,
    config: &SearchConfig,
    caches: Option<&crate::cache::SearchCaches>,
) -> Result<SearchOutput> {
    let mut cx = SearchContext::new(catalog, index);
    if let Some(cs) = caches {
        cx = cx.with_caches(cs);
    }
    cx.search(selection, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_qbe::query::{ExampleQuery, QueryColumn};
    use ver_select::{column_selection, SelectionConfig};
    use ver_store::table::TableBuilder;

    /// Two "state fact" tables joinable with a states dimension — a shape
    /// that yields multiple candidate views for the same query.
    fn setup() -> (TableCatalog, DiscoveryIndex) {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..30).map(|i| format!("st{i}")).collect();

        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("A{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("pop1", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("pop2", &["state", "pop"]);
        for (i, s) in states.iter().enumerate().take(25) {
            b.push_row(vec![Value::text(s.clone()), Value::Int(2000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        (cat, idx)
    }

    fn select(idx: &DiscoveryIndex, q: &ExampleQuery) -> SelectionResult {
        column_selection(
            idx,
            q,
            &SelectionConfig {
                theta: usize::MAX,
                ..Default::default()
            },
        )
    }

    fn run(
        cat: &TableCatalog,
        idx: &DiscoveryIndex,
        q: &ExampleQuery,
        config: &SearchConfig,
    ) -> SearchOutput {
        let sel = select(idx, q);
        SearchContext::new(cat, idx).search(&sel, config).unwrap()
    }

    #[test]
    fn produces_ranked_views_with_stats() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["A1", "A2"]),
            QueryColumn::of_strs(&["1001", "1002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(out.stats.joinable_groups >= 1);
        assert!(out.stats.views >= 1);
        assert_eq!(out.views.len(), out.stats.views);
        // Ranked: scores non-increasing.
        let scores: Vec<f64> = out.views.iter().map(|v| v.provenance.join_score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        // Ids assigned sequentially.
        assert!(out
            .views
            .iter()
            .enumerate()
            .all(|(i, v)| v.id == ViewId(i as u32)));
        // The DAG executed the batch.
        assert_eq!(out.dag.candidates, out.views.len());
    }

    #[test]
    fn ambiguous_state_query_generates_multiple_views() {
        let (cat, idx) = setup();
        // "state" examples match 3 columns; pop examples match pop1 and pop2.
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(
            out.stats.views >= 2,
            "ambiguity should produce multiple candidate views, got {}",
            out.stats.views
        );
    }

    #[test]
    fn top_k_truncates_materialisation() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let all = run(&cat, &idx, &q, &SearchConfig::default());
        let one = run(
            &cat,
            &idx,
            &q,
            &SearchConfig {
                k: 1,
                ..Default::default()
            },
        );
        assert!(all.stats.views > 1);
        assert_eq!(one.stats.views, 1);
        // The kept view is the top-ranked one.
        assert_eq!(
            one.views[0].provenance.join_score,
            all.views[0].provenance.join_score
        );
        // Pruned candidates were never planned or executed.
        assert_eq!(one.dag.candidates, 1);
        assert!(one.dag.total_steps <= 1);
    }

    #[test]
    fn empty_selection_gives_empty_output() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![QueryColumn::of_strs(&["missing-value"])]).unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert_eq!(out.stats.views, 0);
        assert!(out.views.is_empty());
    }

    #[test]
    fn single_table_query_materialises_projection_only_view() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["A1"]),
            QueryColumn::of_strs(&["st1"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(out
            .views
            .iter()
            .any(|v| v.provenance.hops() == 0 && v.attribute_names() == vec!["iata", "state"]));
    }

    #[test]
    fn provenance_links_views_to_join_graphs() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "1002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        for v in &out.views {
            assert_eq!(v.provenance.projection.len(), 2);
            assert_eq!(
                v.provenance.source_tables.len(),
                v.provenance.hops() + 1,
                "tree: tables = edges + 1"
            );
        }
    }

    #[test]
    fn dag_and_independent_paths_are_bit_identical() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let dag = run(&cat, &idx, &q, &SearchConfig::default());
        let independent = run(
            &cat,
            &idx,
            &q,
            &SearchConfig {
                dag_materialize: false,
                ..Default::default()
            },
        );
        assert_eq!(dag.stats, independent.stats);
        assert_eq!(dag.views.len(), independent.views.len());
        for (a, b) in dag.views.iter().zip(&independent.views) {
            assert!(a.same_contents(b), "{} differs across executors", a.id);
        }
        // The DAG actually shared work on this multi-candidate query.
        assert!(dag.dag.candidates > 1);
        assert_eq!(independent.dag, MaterializeStats::default());
    }

    #[test]
    fn cached_search_is_bit_identical_to_uncached() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let cfg = SearchConfig::default();
        let base = SearchContext::new(&cat, &idx).search(&sel, &cfg).unwrap();

        let caches = crate::cache::SearchCaches::new(64);
        let cx = SearchContext::new(&cat, &idx).with_caches(&caches);
        // Three passes over the same caches: cold, warm, warm.
        for pass in 0..3 {
            let out = cx.search(&sel, &cfg).unwrap();
            assert_eq!(out.stats, base.stats, "pass {pass}");
            assert_eq!(out.views.len(), base.views.len());
            for (a, b) in out.views.iter().zip(&base.views) {
                assert!(a.same_contents(b), "pass {pass}: {} differs", a.id);
            }
            if pass > 0 {
                // Warm passes serve every candidate from the LRU: the DAG
                // batch is empty.
                assert_eq!(out.dag.candidates, 0, "pass {pass}");
            }
        }
        // The warm passes actually hit.
        assert!(caches.view_stats().hits > 0, "no view-cache hits");
        assert!(caches.score_stats().hits > 0, "no score-memo hits");
        assert!(caches.view_stats().misses > 0);
    }

    #[test]
    fn thread_counts_produce_identical_search_output() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        for dag_materialize in [true, false] {
            let base = run(
                &cat,
                &idx,
                &q,
                &SearchConfig {
                    threads: 1,
                    dag_materialize,
                    ..Default::default()
                },
            );
            for threads in [2usize, 4, 0] {
                let par = run(
                    &cat,
                    &idx,
                    &q,
                    &SearchConfig {
                        threads,
                        dag_materialize,
                        ..Default::default()
                    },
                );
                assert_eq!(par.stats, base.stats, "threads={threads}");
                assert_eq!(par.dag, base.dag, "threads={threads}");
                assert_eq!(par.views.len(), base.views.len());
                for (a, b) in par.views.iter().zip(&base.views) {
                    assert!(a.same_contents(b), "threads={threads}: {} differs", a.id);
                }
            }
        }
    }

    #[test]
    fn view_cap_budget_trims_output_and_flags_partial() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let cfg = SearchConfig::default();
        let all = SearchContext::new(&cat, &idx).search(&sel, &cfg).unwrap();
        assert!(!all.partial, "unlimited budget must not flag partial");
        assert!(all.views.len() > 1);

        let capped = SearchContext::new(&cat, &idx)
            .with_budget(QueryBudget::none().with_max_views(1))
            .search(&sel, &cfg)
            .unwrap();
        assert!(capped.partial, "a cap that bit must flag partial");
        assert_eq!(capped.views.len(), 1);
        // The kept view is the top-ranked one from the uncapped run.
        assert!(capped.views[0].same_contents(&all.views[0]));

        // A cap wider than the output changes nothing and is not partial.
        let loose = SearchContext::new(&cat, &idx)
            .with_budget(QueryBudget::none().with_max_views(1000))
            .search(&sel, &cfg)
            .unwrap();
        assert!(!loose.partial);
        assert_eq!(loose.views.len(), all.views.len());
    }

    #[test]
    fn candidate_cap_budget_flags_partial() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let out = SearchContext::new(&cat, &idx)
            .with_budget(QueryBudget::none().with_max_candidates(1))
            .search(&sel, &SearchConfig::default())
            .unwrap();
        assert!(out.partial);
        assert!(out.views.len() <= 1);
    }

    #[test]
    fn expired_deadline_degrades_to_empty_partial_output() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        for dag_materialize in [true, false] {
            let out = SearchContext::new(&cat, &idx)
                .with_budget(QueryBudget::none().with_timeout(std::time::Duration::ZERO))
                .search(
                    &sel,
                    &SearchConfig {
                        dag_materialize,
                        ..Default::default()
                    },
                )
                .expect("deadline exhaustion degrades, it does not error");
            assert!(out.partial, "dag={dag_materialize}");
            assert!(out.views.is_empty(), "dag={dag_materialize}");
        }
    }

    #[test]
    fn explicit_pool_overrides_config_threads() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let cfg = SearchConfig::default();
        let base = SearchContext::new(&cat, &idx).search(&sel, &cfg).unwrap();
        let pooled = SearchContext::new(&cat, &idx)
            .with_pool(ThreadPool::new(2))
            .search(&sel, &cfg)
            .unwrap();
        assert_eq!(pooled.stats, base.stats);
        for (a, b) in pooled.views.iter().zip(&base.views) {
            assert!(a.same_contents(b));
        }
    }

    #[test]
    fn sharded_scatter_gather_is_bit_identical_to_single_search() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let cfg = SearchConfig::default();
        let single = SearchContext::new(&cat, &idx).search(&sel, &cfg).unwrap();
        assert!(single.views.len() > 1, "need a multi-view query");

        for count in [1usize, 2, 3, 4] {
            let caches = crate::cache::SearchCaches::new(64);
            let outputs: Vec<ShardSearchOutput> = (0..count)
                .map(|shard| {
                    SearchContext::new(&cat, &idx)
                        .with_caches(&caches)
                        .search_shard(&sel, &cfg, shard, count)
                        .unwrap()
                })
                .collect();
            // Ownership partitions the output exactly.
            let total: usize = outputs.iter().map(|o| o.views.len()).sum();
            assert_eq!(total, single.views.len(), "count={count}");
            let merged = merge_shard_outputs(outputs, true);
            assert!(!merged.partial, "count={count}");
            assert_eq!(merged.stats, single.stats, "count={count}");
            assert_eq!(merged.views.len(), single.views.len());
            for (a, b) in merged.views.iter().zip(&single.views) {
                assert_eq!(a.id, b.id, "count={count}");
                assert!(a.same_contents(b), "count={count}: {} differs", a.id);
            }
        }
    }

    #[test]
    fn shard_merge_ignores_shard_order_and_flags_incomplete_sets() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let cfg = SearchConfig::default();
        let single = SearchContext::new(&cat, &idx).search(&sel, &cfg).unwrap();
        let cx = SearchContext::new(&cat, &idx);
        let mut outputs: Vec<ShardSearchOutput> = (0..3)
            .map(|s| cx.search_shard(&sel, &cfg, s, 3).unwrap())
            .collect();
        outputs.reverse();
        let merged = merge_shard_outputs(outputs, true);
        assert!(!merged.partial);
        for (a, b) in merged.views.iter().zip(&single.views) {
            assert!(a.same_contents(b), "shard order leaked into the merge");
        }

        // A dropped scatter leg degrades: still ranked, flagged partial.
        let partial_set: Vec<ShardSearchOutput> = (0..2)
            .map(|s| cx.search_shard(&sel, &cfg, s, 3).unwrap())
            .collect();
        let merged = merge_shard_outputs(partial_set, false);
        assert!(merged.partial, "missing shard must flag partial");
        assert!(merged.views.len() <= single.views.len());
        let scores: Vec<f64> = merged
            .views
            .iter()
            .map(|v| v.provenance.join_score)
            .collect();
        assert!(
            scores.windows(2).all(|w| w[0] >= w[1]),
            "still rank-ordered"
        );
        // Merging nothing (every shard failed) is empty + partial.
        let empty = merge_shard_outputs(Vec::new(), false);
        assert!(empty.partial);
        assert!(empty.views.is_empty());
    }

    #[test]
    fn shard_budgets_degrade_the_scatter_not_error() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let cfg = SearchConfig::default();
        let out = SearchContext::new(&cat, &idx)
            .with_budget(QueryBudget::none().with_timeout(std::time::Duration::ZERO))
            .search_shard(&sel, &cfg, 0, 2)
            .expect("deadline exhaustion degrades per shard");
        assert!(out.partial);
        assert!(out.views.is_empty());
        let merged = merge_shard_outputs(vec![out], false);
        assert!(merged.partial);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_unified_entrypoint() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let cfg = SearchConfig::default();
        let base = SearchContext::new(&cat, &idx).search(&sel, &cfg).unwrap();
        let via_old = join_graph_search(&cat, &idx, &sel, &cfg).unwrap();
        let via_old_cached = join_graph_search_cached(&cat, &idx, &sel, &cfg, None).unwrap();
        for out in [&via_old, &via_old_cached] {
            assert_eq!(out.stats, base.stats);
            for (a, b) in out.views.iter().zip(&base.views) {
                assert!(a.same_contents(b));
            }
        }
    }
}
