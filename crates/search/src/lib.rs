//! JOIN-GRAPH-SEARCH (Algorithm 5) and view materialization.
//!
//! Takes the candidate columns produced by COLUMN-SELECTION (or a baseline),
//! enumerates combinations (one candidate per query attribute), finds the
//! join graphs connecting each combination's tables through the discovery
//! index (`ρ`-hop bounded), caches provably non-joinable table pairs to
//! skip doomed combinations, ranks join graphs by the discovery engine's
//! join score, and materialises the top-k into candidate PJ-views over a
//! shared sub-join DAG that executes each distinct oriented join step once.
//!
//! * [`enumerate`] — combination & joinable-group enumeration with the
//!   non-joinable cache (Algorithm 5 step 1);
//! * [`rank`] — join-score ranking (PK/FK-ness × smaller-is-better);
//! * [`materialize`] — join graph → [`PjPlan`](ver_engine::PjPlan) →
//!   materialized [`View`](ver_engine::View), batched across candidates by
//!   [`MaterializePlanner`] (Algorithm 5 step 2);
//! * [`search`] — the end-to-end component behind [`SearchContext`], with
//!   the statistics the paper's figures report (joinable groups / join
//!   graphs / views).
//!
//! Layer 3 of the crate map in the repo-root `ARCHITECTURE.md`; the
//! [`cache`] module is the serving layer's cross-query reuse point.

pub mod cache;
pub mod enumerate;
pub mod materialize;
pub mod rank;
pub mod search;

pub use cache::{view_key, SearchCaches, ViewKey};
pub use materialize::{plan_from_join_graph, MaterializePlanner, MaterializeStats};
#[allow(deprecated)]
pub use search::{join_graph_search, join_graph_search_cached};
pub use search::{
    merge_shard_outputs, SearchConfig, SearchContext, SearchOutput, SearchStats, ShardSearchOutput,
    ShardView,
};
