//! Join graph → PJ plan → materialized view (MATERIALIZE-VIEWS), batched
//! over a shared sub-join DAG.
//!
//! A join graph is a *tree* over tables; the executor wants a *chain* of
//! join steps. [`plan_from_join_graph`] linearises by BFS from the base
//! table (the first projected column's table), orienting each edge so
//! `left` is already materialised.
//!
//! The top-k candidates of one query share enormous join-prefix overlap —
//! Algorithm 5 enumerates combinations over the same join paths, so on the
//! WDC corpus tens of thousands of candidate PJ-views reduce to a few
//! hundred distinct join steps. [`MaterializePlanner::plan_batch`] exploits
//! that: it folds every plan's oriented step sequence into a prefix trie
//! (the shared sub-join DAG), executes each distinct step **once** on
//! [`JoinState`] row-index intermediates, and only gathers values for the
//! final per-candidate projections. Candidates whose shared prefix matched
//! nothing are pruned without executing their remaining steps.
//!
//! Output is **bit-identical** to materialising every candidate
//! independently through [`execute_plan`](ver_engine::exec::execute_plan)
//! — same rows in the same order, same names, same provenance (the
//! `ver_engine::dag` module documents why). `SearchConfig::dag_materialize
//! = false` keeps the independent path available as the reference arm, and
//! `crates/search/tests/materialize_equivalence.rs` plus the repo-root
//! determinism suite pin the equivalence.

use std::sync::Arc;
use ver_common::budget::QueryBudget;
use ver_common::error::{Result, VerError};
use ver_common::fxhash::FxHashMap;
use ver_common::ids::{ColumnRef, TableId};
use ver_common::pool::ThreadPool;
use ver_engine::dag::{materialize_state_hashed, materialize_state_named, ColumnHashes, JoinState};
use ver_engine::plan::{JoinStep, PjPlan};
use ver_engine::view::View;
use ver_index::JoinGraph;
use ver_store::catalog::TableCatalog;

/// Build a [`PjPlan`] for `graph` projecting `projection`.
///
/// The base table is the first projected column's table; edges are consumed
/// BFS-style, each oriented so its `left` endpoint is already in the plan.
/// Errors when the graph is not a connected tree over the base.
pub fn plan_from_join_graph(
    catalog: &TableCatalog,
    graph: &JoinGraph,
    projection: &[ColumnRef],
) -> Result<PjPlan> {
    let base = projection
        .first()
        .ok_or_else(|| VerError::InvalidQuery("empty projection".into()))?
        .table;
    if graph.edges.is_empty() {
        return Ok(PjPlan::single(base, projection.to_vec()));
    }

    // Resolve edges to (table, cref) endpoints once.
    struct Edge {
        a_table: TableId,
        a: ColumnRef,
        b_table: TableId,
        b: ColumnRef,
    }
    let edges: Vec<Edge> = graph
        .edges
        .iter()
        .map(|e| -> Result<Edge> {
            let a = catalog.column_ref(e.left)?;
            let b = catalog.column_ref(e.right)?;
            Ok(Edge {
                a_table: a.table,
                a,
                b_table: b.table,
                b,
            })
        })
        .collect::<Result<_>>()?;

    // BFS from base, consuming one edge per step.
    let mut joins = Vec::with_capacity(edges.len());
    let mut present = vec![base];
    let mut remaining: Vec<&Edge> = edges.iter().collect();
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|e| present.contains(&e.a_table) != present.contains(&e.b_table));
        match pos {
            Some(i) => {
                let e = remaining.remove(i);
                let (left, right, new_table) = if present.contains(&e.a_table) {
                    (e.a, e.b, e.b_table)
                } else {
                    (e.b, e.a, e.a_table)
                };
                joins.push(JoinStep { left, right });
                present.push(new_table);
            }
            None => {
                return Err(VerError::JoinError(
                    "join graph is not a connected tree over the base table".into(),
                ));
            }
        }
    }

    Ok(PjPlan {
        base,
        joins,
        projection: projection.to_vec(),
    })
}

/// Counters from one [`MaterializePlanner::plan_batch`] call — how much
/// join work the shared sub-join DAG saved. Reported per query in
/// [`SearchOutput::dag`](crate::search::SearchOutput) and aggregated by
/// `exp_bench_report`'s `materialize_dag` section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaterializeStats {
    /// Candidate plans executed by the batch (cache hits never reach it).
    pub candidates: usize,
    /// Join steps summed over all candidate plans — what the independent
    /// path would execute.
    pub total_steps: usize,
    /// Distinct DAG nodes (unique oriented step prefixes) — what the
    /// batch actually executed.
    pub distinct_steps: usize,
    /// Steps served by a shared prefix instead of re-executed
    /// (`total_steps − distinct_steps`).
    pub shared_hits: usize,
    /// DAG nodes short-circuited because their parent prefix was already
    /// empty — joins that were never probed at all.
    pub empty_pruned: usize,
}

impl MaterializeStats {
    /// Merge counters from another batch (bench aggregation across queries).
    pub fn accumulate(&mut self, other: MaterializeStats) {
        self.candidates += other.candidates;
        self.total_steps += other.total_steps;
        self.distinct_steps += other.distinct_steps;
        self.shared_hits += other.shared_hits;
        self.empty_pruned += other.empty_pruned;
    }
}

/// One DAG node: a distinct oriented step applied to a parent prefix.
struct DagNode {
    /// Index into the node table; base states are modelled as roots.
    parent: DagParent,
    step: JoinStep,
}

#[derive(Clone, Copy)]
enum DagParent {
    /// Root: the identity state over a base table.
    Base(usize),
    /// Interior: another node's output state.
    Node(usize),
}

/// Plans candidate batches onto the shared sub-join DAG and executes them.
///
/// The planner owns nothing but a catalog reference; construct one per
/// search invocation. [`MaterializePlanner::plan`] linearises a single
/// (graph, projection) candidate, [`MaterializePlanner::plan_batch`]
/// executes many plans with prefix sharing.
pub struct MaterializePlanner<'a> {
    catalog: &'a TableCatalog,
}

impl<'a> MaterializePlanner<'a> {
    /// Planner over `catalog`.
    pub fn new(catalog: &'a TableCatalog) -> Self {
        MaterializePlanner { catalog }
    }

    /// Linearise one candidate — see [`plan_from_join_graph`].
    pub fn plan(&self, graph: &JoinGraph, projection: &[ColumnRef]) -> Result<PjPlan> {
        plan_from_join_graph(self.catalog, graph, projection)
    }

    /// Execute a batch of `(plan, join_score)` candidates over the shared
    /// sub-join DAG.
    ///
    /// Each distinct oriented step prefix is executed once as a
    /// [`JoinState`]; every plan sharing it reuses the row-index arrays.
    /// Prefixes that matched nothing prune all their descendants. Results
    /// come back in input order, each bit-identical to what
    /// [`execute_plan`](ver_engine::exec::execute_plan) would produce for
    /// that plan alone; per-plan failures surface as that plan's `Err`
    /// without affecting the rest of the batch.
    ///
    /// Node execution fans out level-by-level on `pool` (order-preserving,
    /// pure per-node work), so the output is identical for every thread
    /// count.
    pub fn plan_batch(
        &self,
        candidates: &[(PjPlan, f64)],
        pool: ThreadPool,
    ) -> (Vec<Result<View>>, MaterializeStats) {
        self.plan_batch_budgeted(candidates, pool, &QueryBudget::none())
    }

    /// [`plan_batch`](Self::plan_batch) under a [`QueryBudget`]: the
    /// cooperative deadline is checked at every DAG node execution (the
    /// per-edge stage boundary) and every final projection. A node that
    /// trips returns `Err(VerError::DeadlineExceeded)`, which propagates to
    /// every candidate whose plan depends on it — candidates whose chains
    /// completed earlier still come back `Ok`, which is what lets the
    /// search path return partial results. A panic inside node execution
    /// or projection is likewise confined to the affected candidates as
    /// `Err(VerError::Internal)`. With an unlimited budget and no injected
    /// faults this is byte-for-byte `plan_batch` (the checks are a no-op).
    pub fn plan_batch_budgeted(
        &self,
        candidates: &[(PjPlan, f64)],
        pool: ThreadPool,
        budget: &QueryBudget,
    ) -> (Vec<Result<View>>, MaterializeStats) {
        let mut stats = MaterializeStats {
            candidates: candidates.len(),
            ..Default::default()
        };

        // Build the DAG: a trie over (base table, oriented step sequence).
        // Sequential over candidates in input (rank) order, so node ids and
        // level membership are deterministic.
        let mut bases: Vec<TableId> = Vec::new();
        let mut base_ids: FxHashMap<TableId, usize> = FxHashMap::default();
        let mut nodes: Vec<DagNode> = Vec::new();
        // Trie edges as per-parent adjacency lists of (packed left cref,
        // packed right cref, child id). Fan-out per prefix is tiny, so a
        // linear scan of the parent's own list beats hashing into one
        // global map — this walk runs once per step of every candidate.
        let pack = |c: ColumnRef| ((c.table.0 as u64) << 16) | c.ordinal as u64;
        let mut base_children: Vec<Vec<(u64, u64, usize)>> = Vec::new();
        let mut node_children: Vec<Vec<(u64, u64, usize)>> = Vec::new();
        // Per-candidate terminal: Err(plan validation error) or the leaf.
        enum Leaf {
            Base(usize),
            Node(usize),
            Invalid(VerError),
        }
        let mut levels: Vec<Vec<usize>> = Vec::new();
        let leaves: Vec<Leaf> = candidates
            .iter()
            .map(|(plan, _)| {
                if let Err(e) = plan.validate() {
                    return Leaf::Invalid(e);
                }
                stats.total_steps += plan.joins.len();
                let base_id = *base_ids.entry(plan.base).or_insert_with(|| {
                    bases.push(plan.base);
                    base_children.push(Vec::new());
                    bases.len() - 1
                });
                let mut at = Leaf::Base(base_id);
                for (depth, &step) in plan.joins.iter().enumerate() {
                    let (l, r) = (pack(step.left), pack(step.right));
                    let parent = match at {
                        Leaf::Base(b) => DagParent::Base(b),
                        Leaf::Node(n) => DagParent::Node(n),
                        Leaf::Invalid(_) => unreachable!(),
                    };
                    let list = match parent {
                        DagParent::Base(b) => &base_children[b],
                        DagParent::Node(n) => &node_children[n],
                    };
                    let next = match list.iter().find(|&&(el, er, _)| el == l && er == r) {
                        Some(&(_, _, id)) => id,
                        None => {
                            let id = nodes.len();
                            match parent {
                                DagParent::Base(b) => base_children[b].push((l, r, id)),
                                DagParent::Node(n) => node_children[n].push((l, r, id)),
                            }
                            nodes.push(DagNode { parent, step });
                            node_children.push(Vec::new());
                            if levels.len() <= depth {
                                levels.push(Vec::new());
                            }
                            levels[depth].push(id);
                            id
                        }
                    };
                    at = Leaf::Node(next);
                }
                at
            })
            .collect();
        stats.distinct_steps = nodes.len();
        stats.shared_hits = stats.total_steps - stats.distinct_steps;

        // Hash every key and projection column the batch touches once up
        // front; steps and projections share the arrays instead of
        // re-hashing per node / per candidate. Pure optimisation — hashes
        // only pre-bucket, matches are value-verified, so output is
        // unchanged (see `ver_engine::dag::ColumnHashes`).
        let mut hashes = ColumnHashes::new();
        for node in &nodes {
            hashes.ensure(self.catalog, node.step.left);
            hashes.ensure(self.catalog, node.step.right);
        }
        for ((plan, _), leaf) in candidates.iter().zip(&leaves) {
            if !matches!(leaf, Leaf::Invalid(_)) {
                for &p in &plan.projection {
                    hashes.ensure(self.catalog, p);
                }
            }
        }

        // Execute: base states, then one level at a time. Each level's
        // nodes depend only on completed states, so they fan out on the
        // pool; par_map is order-preserving and every node is a pure
        // function of its parent, so results are thread-count independent.
        let base_states: Vec<Result<JoinState>> =
            pool.par_map(&bases, |&t| JoinState::base(self.catalog, t));
        let mut states: Vec<Option<Result<JoinState>>> = (0..nodes.len()).map(|_| None).collect();
        for level in &levels {
            // `try_par_map` so an injected (or genuine) panic in one node
            // degrades to that node's `Err(VerError::Internal)` instead of
            // unwinding the query; the cooperative deadline and the
            // `dag.step` fault point sit at the same per-edge boundary.
            let computed: Vec<(Result<JoinState>, bool)> = pool
                .try_par_map(level, |&id| {
                    ver_common::fault::hit(ver_common::fault::points::DAG_STEP)?;
                    budget.check("dag.step")?;
                    let node = &nodes[id];
                    let parent = match node.parent {
                        DagParent::Base(b) => &base_states[b],
                        DagParent::Node(n) => states[n].as_ref().expect("parent level completed"),
                    };
                    Ok(match parent {
                        Err(e) => (Err(e.clone()), false),
                        Ok(state) => (
                            state.step_hashed(self.catalog, node.step, &hashes),
                            state.is_empty(),
                        ),
                    })
                })
                .into_iter()
                .map(|r| r.unwrap_or_else(|e| (Err(e), false)))
                .collect();
            for (&id, (state, pruned)) in level.iter().zip(computed) {
                states[id] = Some(state);
                stats.empty_pruned += usize::from(pruned);
            }
        }

        // Chain each leaf's `a⋈b⋈c` view name once; every candidate
        // projecting that leaf shares the `Arc<str>` instead of re-walking
        // the catalog per candidate.
        let mut names: FxHashMap<(u8, u32), Arc<str>> = FxHashMap::default();
        let leaf_names: Vec<Option<Arc<str>>> = leaves
            .iter()
            .map(|leaf| {
                let (key, state) = match leaf {
                    Leaf::Invalid(_) => return None,
                    Leaf::Base(b) => ((0u8, *b as u32), &base_states[*b]),
                    Leaf::Node(n) => (
                        (1u8, *n as u32),
                        states[*n].as_ref().expect("leaf level completed"),
                    ),
                };
                let Ok(state) = state else { return None };
                match names.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => Some(e.get().clone()),
                    std::collections::hash_map::Entry::Vacant(e) => state
                        .joined_name(self.catalog)
                        .ok()
                        .map(|n| e.insert(n).clone()),
                }
            })
            .collect();
        // Project every candidate off its leaf state (order-preserving
        // fan-out; value gathering is the only per-candidate work left).
        let idx: Vec<usize> = (0..candidates.len()).collect();
        let views = pool.try_par_map(&idx, |&i| {
            budget.check("dag.project")?;
            let (plan, score) = &candidates[i];
            let state = match &leaves[i] {
                Leaf::Invalid(e) => return Err(e.clone()),
                Leaf::Base(b) => &base_states[*b],
                Leaf::Node(n) => states[*n].as_ref().expect("leaf level completed"),
            };
            match state {
                Err(e) => Err(e.clone()),
                Ok(state) => match &leaf_names[i] {
                    Some(name) => materialize_state_named(
                        self.catalog,
                        state,
                        plan,
                        *score,
                        &hashes,
                        name.clone(),
                    ),
                    None => materialize_state_hashed(self.catalog, state, plan, *score, &hashes),
                },
            }
        });
        (views, stats)
    }
}

/// Materialise one join graph into a view.
///
/// Documented shim over [`MaterializePlanner`]: linearises the graph with
/// [`plan_from_join_graph`] and runs it as a single-candidate
/// [`MaterializePlanner::plan_batch`] — the same shared-kernel executor the
/// batched search path uses, which for one plan degenerates to exactly
/// [`execute_plan`](ver_engine::exec::execute_plan)'s behaviour. Kept as
/// the single-candidate entrypoint for tests and ground-truth tooling.
pub fn materialize_join_graph(
    catalog: &TableCatalog,
    graph: &JoinGraph,
    projection: &[ColumnRef],
    join_score: f64,
) -> Result<View> {
    let planner = MaterializePlanner::new(catalog);
    let plan = planner.plan(graph, projection)?;
    let (mut views, _) = planner.plan_batch(&[(plan, join_score)], ThreadPool::new(1));
    views.pop().expect("one candidate in, one result out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::ids::ColumnId;
    use ver_common::value::Value;
    use ver_engine::exec::execute_plan;
    use ver_index::{build_index, DiscoveryIndex, IndexConfig};
    use ver_store::table::TableBuilder;

    /// airports(iata, state) ⟷ states(state, pop) ⟷ regions(state, region)
    fn setup() -> (TableCatalog, DiscoveryIndex) {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..30).map(|i| format!("st{i}")).collect();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("A{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("states", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("regions", &["state", "region"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![
                Value::text(s.clone()),
                Value::text(format!("R{}", i % 3)),
            ])
            .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        (cat, idx)
    }

    fn cref(t: u32, o: u16) -> ColumnRef {
        ColumnRef {
            table: TableId(t),
            ordinal: o,
        }
    }

    #[test]
    fn single_table_graph_materialises_projection() {
        let (cat, _) = setup();
        let graph = JoinGraph::default();
        let v = materialize_join_graph(&cat, &graph, &[cref(0, 0), cref(0, 1)], 1.0).unwrap();
        assert_eq!(v.row_count(), 30);
        assert_eq!(v.attribute_names(), vec!["iata", "state"]);
    }

    #[test]
    fn one_hop_graph_joins_two_tables() {
        let (cat, idx) = setup();
        let graphs = idx.generate_join_graphs(&[TableId(0), TableId(1)], 2);
        assert!(!graphs.is_empty());
        let direct = graphs.iter().find(|g| g.hops() == 1).expect("direct join");
        let v = materialize_join_graph(&cat, direct, &[cref(0, 0), cref(1, 1)], 0.9).unwrap();
        assert_eq!(v.row_count(), 30);
        assert_eq!(v.attribute_names(), vec!["iata", "pop"]);
        assert_eq!(v.provenance.join_score, 0.9);
    }

    #[test]
    fn projection_order_decides_base_table() {
        let (cat, idx) = setup();
        let graphs = idx.generate_join_graphs(&[TableId(0), TableId(1)], 2);
        let direct = graphs.iter().find(|g| g.hops() == 1).unwrap();
        // Projection starting from states → base = states.
        let plan = plan_from_join_graph(&cat, direct, &[cref(1, 1), cref(0, 0)]).unwrap();
        assert_eq!(plan.base, TableId(1));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn two_hop_chain_linearises_correctly() {
        let (cat, idx) = setup();
        // airports—states—regions requires an intermediate hop
        // (airports.state joins regions.state directly too, but pick a
        // 2-hop graph through states if present).
        let graphs = idx.generate_join_graphs(&[TableId(0), TableId(2)], 2);
        assert!(!graphs.is_empty());
        let two_hop = graphs.iter().find(|g| g.hops() == 2);
        if let Some(g) = two_hop {
            let v = materialize_join_graph(&cat, g, &[cref(0, 0), cref(2, 1)], 0.8).unwrap();
            assert_eq!(v.row_count(), 30);
            assert_eq!(v.provenance.hops(), 2);
        }
    }

    #[test]
    fn disconnected_graph_errors() {
        let (cat, idx) = setup();
        // Fabricate a graph whose edge does not touch the base table's tree.
        let graphs = idx.generate_join_graphs(&[TableId(1), TableId(2)], 2);
        let g = graphs.iter().find(|g| g.hops() == 1).unwrap();
        // Base from a projection on airports, but edges only link states—regions:
        // BFS can never attach the first edge.
        let err = plan_from_join_graph(&cat, g, &[cref(0, 0)]);
        assert!(err.is_err());
    }

    #[test]
    fn deduplication_happens_inside_views() {
        let (cat, idx) = setup();
        let graphs = idx.generate_join_graphs(&[TableId(0), TableId(2)], 2);
        let direct = graphs.iter().find(|g| g.hops() == 1).unwrap();
        // Project only the region column: 30 rows collapse to 3 regions.
        let v = materialize_join_graph(&cat, direct, &[cref(2, 1)], 1.0).unwrap();
        assert_eq!(v.row_count(), 3);
    }

    #[test]
    fn empty_projection_is_invalid() {
        let (cat, _) = setup();
        assert!(plan_from_join_graph(&cat, &JoinGraph::default(), &[]).is_err());
    }

    #[test]
    fn column_ids_resolve_through_catalog() {
        let (cat, _) = setup();
        // ColumnId(3) = states.pop (airports has 2 columns).
        let cref = cat.column_ref(ColumnId(3)).unwrap();
        assert_eq!(cref.table, TableId(1));
        assert_eq!(cref.ordinal, 1);
    }

    /// All prefix-sharing shapes at once: the batch must return exactly
    /// what independent execution returns, while executing fewer steps.
    #[test]
    fn plan_batch_matches_independent_execution_and_shares_prefixes() {
        let (cat, _) = setup();
        let step_as = JoinStep {
            left: cref(0, 1),
            right: cref(1, 0),
        };
        let step_sr = JoinStep {
            left: cref(1, 0),
            right: cref(2, 0),
        };
        let step_ar = JoinStep {
            left: cref(0, 1),
            right: cref(2, 0),
        };
        let plans: Vec<(PjPlan, f64)> = vec![
            // Three candidates over the same 1-hop prefix...
            (
                PjPlan {
                    base: TableId(0),
                    joins: vec![step_as],
                    projection: vec![cref(0, 0), cref(1, 1)],
                },
                0.9,
            ),
            (
                PjPlan {
                    base: TableId(0),
                    joins: vec![step_as],
                    projection: vec![cref(0, 0), cref(1, 0)],
                },
                0.8,
            ),
            // ...one extending it by a second hop...
            (
                PjPlan {
                    base: TableId(0),
                    joins: vec![step_as, step_sr],
                    projection: vec![cref(0, 0), cref(2, 1)],
                },
                0.7,
            ),
            // ...one on a different prefix, and a projection-only plan.
            (
                PjPlan {
                    base: TableId(0),
                    joins: vec![step_ar],
                    projection: vec![cref(0, 0), cref(2, 1)],
                },
                0.6,
            ),
            (PjPlan::single(TableId(2), vec![cref(2, 1)]), 1.0),
        ];

        for threads in [1usize, 2, 0] {
            let planner = MaterializePlanner::new(&cat);
            let (views, stats) = planner.plan_batch(&plans, ThreadPool::new(threads));
            assert_eq!(views.len(), plans.len());
            for ((plan, score), view) in plans.iter().zip(&views) {
                let independent = execute_plan(&cat, plan, *score).unwrap();
                let batched = view.as_ref().expect("batch result");
                assert_eq!(batched.table, independent.table, "threads={threads}");
                assert_eq!(batched.provenance, independent.provenance);
            }
            assert_eq!(stats.candidates, 5);
            assert_eq!(stats.total_steps, 5, "1+1+2+1 joins");
            assert_eq!(stats.distinct_steps, 3, "as, as→sr, ar");
            assert_eq!(
                stats.shared_hits, 2,
                "second as-candidate and the two-hop prefix both reuse"
            );
            assert_eq!(stats.empty_pruned, 0);
        }
    }

    #[test]
    fn plan_batch_isolates_per_candidate_failures() {
        let (cat, _) = setup();
        let good = PjPlan::single(TableId(0), vec![cref(0, 0)]);
        let invalid = PjPlan::single(TableId(0), vec![]); // fails validate()
        let missing = PjPlan::single(TableId(42), vec![cref(42, 0)]); // no table
        let planner = MaterializePlanner::new(&cat);
        let (views, stats) = planner.plan_batch(
            &[(good, 1.0), (invalid, 1.0), (missing, 1.0)],
            ThreadPool::new(1),
        );
        assert!(views[0].is_ok());
        assert!(views[1].is_err());
        assert!(views[2].is_err());
        assert_eq!(stats.candidates, 3);
    }

    #[test]
    fn plan_batch_prunes_descendants_of_empty_prefixes() {
        let (mut cat, _) = setup();
        let mut b = TableBuilder::new("nomatch", &["state"]);
        b.push_row(vec!["Nowhere".into()]).unwrap();
        cat.add_table(b.build()).unwrap();
        // nomatch ⋈ states is empty; the second hop must be pruned, and the
        // resulting view is still the (empty) one independent execution
        // produces.
        let plan = PjPlan {
            base: TableId(3),
            joins: vec![
                JoinStep {
                    left: cref(3, 0),
                    right: cref(1, 0),
                },
                JoinStep {
                    left: cref(1, 0),
                    right: cref(2, 0),
                },
            ],
            projection: vec![cref(3, 0), cref(2, 1)],
        };
        let planner = MaterializePlanner::new(&cat);
        let (views, stats) = planner.plan_batch(&[(plan.clone(), 0.5)], ThreadPool::new(1));
        let batched = views[0].as_ref().unwrap();
        let independent = execute_plan(&cat, &plan, 0.5).unwrap();
        assert_eq!(batched.table, independent.table);
        assert_eq!(batched.row_count(), 0);
        assert_eq!(stats.empty_pruned, 1, "second hop never probed");
    }
}
