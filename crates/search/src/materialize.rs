//! Join graph → PJ plan → materialized view (MATERIALIZE-VIEWS).
//!
//! A join graph is a *tree* over tables; the executor wants a *chain* of
//! join steps. We linearise by BFS from the base table (the first projected
//! column's table), orienting each edge so `left` is already materialised.

use ver_common::error::{Result, VerError};
use ver_common::ids::{ColumnRef, TableId};
use ver_engine::plan::{JoinStep, PjPlan};
use ver_engine::view::View;
use ver_index::{DiscoveryIndex, JoinGraph};
use ver_store::catalog::TableCatalog;

/// Build a [`PjPlan`] for `graph` projecting `projection`.
pub fn plan_from_join_graph(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    graph: &JoinGraph,
    projection: &[ColumnRef],
) -> Result<PjPlan> {
    let base = projection
        .first()
        .ok_or_else(|| VerError::InvalidQuery("empty projection".into()))?
        .table;
    if graph.edges.is_empty() {
        return Ok(PjPlan::single(base, projection.to_vec()));
    }

    // Resolve edges to (table, cref) endpoints once.
    struct Edge {
        a_table: TableId,
        a: ColumnRef,
        b_table: TableId,
        b: ColumnRef,
    }
    let edges: Vec<Edge> = graph
        .edges
        .iter()
        .map(|e| -> Result<Edge> {
            let a = catalog.column_ref(e.left)?;
            let b = catalog.column_ref(e.right)?;
            Ok(Edge {
                a_table: a.table,
                a,
                b_table: b.table,
                b,
            })
        })
        .collect::<Result<_>>()?;

    // BFS from base, consuming one edge per step.
    let mut joins = Vec::with_capacity(edges.len());
    let mut present = vec![base];
    let mut remaining: Vec<&Edge> = edges.iter().collect();
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|e| present.contains(&e.a_table) != present.contains(&e.b_table));
        match pos {
            Some(i) => {
                let e = remaining.remove(i);
                let (left, right, new_table) = if present.contains(&e.a_table) {
                    (e.a, e.b, e.b_table)
                } else {
                    (e.b, e.a, e.a_table)
                };
                joins.push(JoinStep { left, right });
                present.push(new_table);
            }
            None => {
                return Err(VerError::JoinError(
                    "join graph is not a connected tree over the base table".into(),
                ));
            }
        }
    }

    let _ = index; // index reserved for future orientation hints
    Ok(PjPlan {
        base,
        joins,
        projection: projection.to_vec(),
    })
}

/// Materialise one join graph into a view.
pub fn materialize_join_graph(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    graph: &JoinGraph,
    projection: &[ColumnRef],
    join_score: f64,
) -> Result<View> {
    let plan = plan_from_join_graph(catalog, index, graph, projection)?;
    ver_engine::exec::execute_plan(catalog, &plan, join_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::ids::ColumnId;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_store::table::TableBuilder;

    /// airports(iata, state) ⟷ states(state, pop) ⟷ regions(state, region)
    fn setup() -> (TableCatalog, DiscoveryIndex) {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..30).map(|i| format!("st{i}")).collect();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("A{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("states", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("regions", &["state", "region"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![
                Value::text(s.clone()),
                Value::text(format!("R{}", i % 3)),
            ])
            .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        (cat, idx)
    }

    fn cref(t: u32, o: u16) -> ColumnRef {
        ColumnRef {
            table: TableId(t),
            ordinal: o,
        }
    }

    #[test]
    fn single_table_graph_materialises_projection() {
        let (cat, idx) = setup();
        let graph = JoinGraph::default();
        let v = materialize_join_graph(&cat, &idx, &graph, &[cref(0, 0), cref(0, 1)], 1.0).unwrap();
        assert_eq!(v.row_count(), 30);
        assert_eq!(v.attribute_names(), vec!["iata", "state"]);
    }

    #[test]
    fn one_hop_graph_joins_two_tables() {
        let (cat, idx) = setup();
        let graphs = idx.generate_join_graphs(&[TableId(0), TableId(1)], 2);
        assert!(!graphs.is_empty());
        let direct = graphs.iter().find(|g| g.hops() == 1).expect("direct join");
        let v = materialize_join_graph(&cat, &idx, direct, &[cref(0, 0), cref(1, 1)], 0.9).unwrap();
        assert_eq!(v.row_count(), 30);
        assert_eq!(v.attribute_names(), vec!["iata", "pop"]);
        assert_eq!(v.provenance.join_score, 0.9);
    }

    #[test]
    fn projection_order_decides_base_table() {
        let (cat, idx) = setup();
        let graphs = idx.generate_join_graphs(&[TableId(0), TableId(1)], 2);
        let direct = graphs.iter().find(|g| g.hops() == 1).unwrap();
        // Projection starting from states → base = states.
        let plan = plan_from_join_graph(&cat, &idx, direct, &[cref(1, 1), cref(0, 0)]).unwrap();
        assert_eq!(plan.base, TableId(1));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn two_hop_chain_linearises_correctly() {
        let (cat, idx) = setup();
        // airports—states—regions requires an intermediate hop
        // (airports.state joins regions.state directly too, but pick a
        // 2-hop graph through states if present).
        let graphs = idx.generate_join_graphs(&[TableId(0), TableId(2)], 2);
        assert!(!graphs.is_empty());
        let two_hop = graphs.iter().find(|g| g.hops() == 2);
        if let Some(g) = two_hop {
            let v = materialize_join_graph(&cat, &idx, g, &[cref(0, 0), cref(2, 1)], 0.8).unwrap();
            assert_eq!(v.row_count(), 30);
            assert_eq!(v.provenance.hops(), 2);
        }
    }

    #[test]
    fn disconnected_graph_errors() {
        let (cat, idx) = setup();
        // Fabricate a graph whose edge does not touch the base table's tree.
        let graphs = idx.generate_join_graphs(&[TableId(1), TableId(2)], 2);
        let g = graphs.iter().find(|g| g.hops() == 1).unwrap();
        // Base from a projection on airports, but edges only link states—regions:
        // BFS can never attach the first edge.
        let err = plan_from_join_graph(&cat, &idx, g, &[cref(0, 0)]);
        assert!(err.is_err());
    }

    #[test]
    fn deduplication_happens_inside_views() {
        let (cat, idx) = setup();
        let graphs = idx.generate_join_graphs(&[TableId(0), TableId(2)], 2);
        let direct = graphs.iter().find(|g| g.hops() == 1).unwrap();
        // Project only the region column: 30 rows collapse to 3 regions.
        let v = materialize_join_graph(&cat, &idx, direct, &[cref(2, 1)], 1.0).unwrap();
        assert_eq!(v.row_count(), 3);
    }

    #[test]
    fn empty_projection_is_invalid() {
        let (cat, idx) = setup();
        assert!(plan_from_join_graph(&cat, &idx, &JoinGraph::default(), &[]).is_err());
    }

    #[test]
    fn column_ids_resolve_through_catalog() {
        let (cat, _) = setup();
        // ColumnId(3) = states.pop (airports has 2 columns).
        let cref = cat.column_ref(ColumnId(3)).unwrap();
        assert_eq!(cref.table, TableId(1));
        assert_eq!(cref.ordinal, 1);
    }
}
