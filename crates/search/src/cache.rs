//! Cross-query caches for the online search path.
//!
//! A long-lived serving deployment (`ver-serve`) answers many queries
//! against one immutable discovery index. Two pieces of per-query work are
//! pure functions of that index and therefore safe to share across queries
//! and sessions:
//!
//! * **materialized candidate views** — executing a candidate's
//!   [`PjPlan`] always yields the same view, so an LRU over plans
//!   short-circuits the MATERIALIZER for candidates that recur across
//!   queries (the common case: different example queries over the same
//!   popular tables resolve to the same join graphs);
//! * **join-graph containment scores** — [`join_score`] folds the
//!   hypergraph's signature-estimated containments with profile key-ness;
//!   it is fully determined by the graph's canonical edge form
//!   ([`graph_canon`]), so a memo keyed by that form skips re-scoring.
//!
//! Correctness contract: a cache **hit must be bit-identical to the value a
//! miss would compute**. The score memo keys on the canonical edge form
//! (edge *sets* determine scores — the mean over edges is
//! order-independent). The view cache keys on the candidate's **linearised
//! execution plan** — base table, oriented [`JoinStep`] sequence, and
//! projection — because the materialized view (rows, row order, provenance,
//! chained name) is a pure function of exactly that plan. Keying on the
//! plan rather than the raw edge list means two graphs whose differing edge
//! orders linearise to the same plan share one entry, while graphs that
//! linearise differently (and hence execute differently) never collide.
//! With these keys, cached and uncached runs produce identical
//! [`SearchOutput`]s, which `tests/serve_warm_start.rs` pins against the
//! golden snapshot.
//!
//! [`join_score`]: crate::rank::join_score
//! [`graph_canon`]: crate::rank::graph_canon
//! [`SearchOutput`]: crate::search::SearchOutput
//! [`PjPlan`]: ver_engine::plan::PjPlan

use std::sync::Arc;
use ver_common::cache::{CacheStats, LruCache, Memo};
use ver_common::ids::{ColumnRef, TableId};
use ver_engine::plan::{JoinStep, PjPlan};
use ver_engine::view::View;

/// Key identifying one execution candidate exactly: the linearised plan's
/// base table and oriented join steps in execution order, plus the
/// projected columns.
pub type ViewKey = (TableId, Vec<JoinStep>, Arc<[ColumnRef]>);

/// Build the [`ViewKey`] for a candidate from its linearised `plan`. The
/// projection is passed separately so the shared `Arc` from candidate
/// generation is reused instead of cloning the column list.
pub fn view_key(plan: &PjPlan, projection: &Arc<[ColumnRef]>) -> ViewKey {
    (plan.base, plan.joins.clone(), projection.clone())
}

/// Shared caches threaded through [`SearchContext::search`].
///
/// All methods take `&self`; the struct is `Sync` and intended to live in an
/// `Arc`'d serving engine queried from many threads.
///
/// [`SearchContext::search`]: crate::search::SearchContext::search
#[derive(Debug)]
pub struct SearchCaches {
    /// LRU over materialized candidate views.
    views: LruCache<ViewKey, View>,
    /// Memoized signature/containment-derived join scores, keyed by the
    /// graph's canonical edge form.
    scores: Memo<Vec<(u32, u32)>, f64>,
}

impl SearchCaches {
    /// Caches with the given view-LRU capacity (`0` disables view caching;
    /// the score memo is unbounded — scores are 8 bytes per distinct graph).
    pub fn new(view_capacity: usize) -> Self {
        SearchCaches {
            views: LruCache::new(view_capacity),
            scores: Memo::new(),
        }
    }

    /// Hit/miss snapshot of the materialized-view LRU.
    pub fn view_stats(&self) -> CacheStats {
        self.views.stats()
    }

    /// Hit/miss snapshot of the join-score memo.
    pub fn score_stats(&self) -> CacheStats {
        self.scores.stats()
    }

    /// Number of views currently cached.
    pub fn cached_views(&self) -> usize {
        self.views.len()
    }

    /// Memoized join score for a graph with canonical form `canon`.
    pub fn score_or_compute(&self, canon: &Vec<(u32, u32)>, compute: impl FnOnce() -> f64) -> f64 {
        self.scores.get_or_insert_with(canon, compute)
    }

    /// Cached view for `key`, if present (counts a hit or a miss). The
    /// batched search path partitions candidates with this before handing
    /// the misses to `MaterializePlanner::plan_batch`.
    pub fn view_get(&self, key: &ViewKey) -> Option<View> {
        self.views.get(key)
    }

    /// Remember a freshly materialized view. Never insert failed
    /// materializations — errors must not poison the cache.
    pub fn view_insert(&self, key: ViewKey, view: View) {
        self.views.insert(key, view);
    }

    /// Cached view for `key`, or materialize-and-remember. Errors are never
    /// cached (a transient failure must not poison the cache).
    pub fn view_or_materialize(
        &self,
        key: ViewKey,
        materialize: impl FnOnce() -> ver_common::error::Result<View>,
    ) -> ver_common::error::Result<View> {
        if let Some(hit) = self.view_get(&key) {
            return Ok(hit);
        }
        let view = materialize()?;
        self.view_insert(key, view.clone());
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::error::VerError;
    use ver_common::ids::ViewId;
    use ver_engine::view::Provenance;
    use ver_store::table::TableBuilder;

    fn cref(t: u32, o: u16) -> ColumnRef {
        ColumnRef {
            table: TableId(t),
            ordinal: o,
        }
    }

    fn projection(cols: &[(u32, u16)]) -> Arc<[ColumnRef]> {
        cols.iter().map(|&(t, o)| cref(t, o)).collect()
    }

    #[allow(clippy::type_complexity)]
    fn plan(base: u32, steps: &[((u32, u16), (u32, u16))]) -> PjPlan {
        PjPlan {
            base: TableId(base),
            joins: steps
                .iter()
                .map(|&((lt, lo), (rt, ro))| JoinStep {
                    left: cref(lt, lo),
                    right: cref(rt, ro),
                })
                .collect(),
            projection: vec![cref(base, 0)],
        }
    }

    fn dummy_view(rows: usize) -> View {
        let mut b = TableBuilder::new("v", &["x"]);
        for i in 0..rows {
            b.push_row(vec![ver_common::value::Value::Int(i as i64)])
                .unwrap();
        }
        View::new(ViewId(0), b.build(), Provenance::default())
    }

    #[test]
    fn view_key_distinguishes_step_order_and_orientation() {
        let p = projection(&[(0, 0), (1, 1)]);
        let a = view_key(&plan(0, &[((0, 0), (1, 0)), ((1, 1), (2, 0))]), &p);
        let b = view_key(&plan(0, &[((1, 1), (2, 0)), ((0, 0), (1, 0))]), &p);
        let c = view_key(&plan(0, &[((0, 0), (1, 1)), ((1, 1), (2, 0))]), &p);
        assert_ne!(a, b, "execution order is part of the key");
        assert_ne!(a, c, "join columns are part of the key");
        assert_eq!(
            a,
            view_key(&plan(0, &[((0, 0), (1, 0)), ((1, 1), (2, 0))]), &p)
        );
        // Same steps, different base (projection-only plans differ too).
        assert_ne!(
            view_key(&plan(0, &[]), &p),
            view_key(&plan(1, &[]), &p),
            "base table is part of the key"
        );
        // Same plan, different projection.
        assert_ne!(
            view_key(&plan(0, &[]), &projection(&[(0, 0)])),
            view_key(&plan(0, &[]), &projection(&[(0, 1)])),
        );
    }

    #[test]
    fn view_cache_hits_skip_materialization() {
        let caches = SearchCaches::new(8);
        let key = view_key(&plan(0, &[((0, 0), (1, 0))]), &projection(&[(0, 0)]));
        let v1 = caches
            .view_or_materialize(key.clone(), || Ok(dummy_view(3)))
            .unwrap();
        let v2 = caches
            .view_or_materialize(key, || panic!("must be served from cache"))
            .unwrap();
        assert!(v1.same_contents(&v2));
        let s = caches.view_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(caches.cached_views(), 1);
    }

    #[test]
    fn get_then_insert_round_trips_like_or_materialize() {
        let caches = SearchCaches::new(8);
        let key = view_key(&plan(0, &[((0, 0), (1, 0))]), &projection(&[(0, 0)]));
        assert!(caches.view_get(&key).is_none(), "cold cache misses");
        caches.view_insert(key.clone(), dummy_view(2));
        let hit = caches.view_get(&key).expect("warm cache hits");
        assert!(hit.same_contents(&dummy_view(2)));
        let s = caches.view_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let caches = SearchCaches::new(8);
        let key = view_key(&plan(0, &[((0, 0), (1, 0))]), &projection(&[(0, 0)]));
        let err = caches
            .view_or_materialize(key.clone(), || Err(VerError::JoinError("transient".into())));
        assert!(err.is_err());
        // The next attempt recomputes and succeeds.
        let ok = caches.view_or_materialize(key, || Ok(dummy_view(1)));
        assert!(ok.is_ok());
        assert_eq!(caches.cached_views(), 1);
    }

    #[test]
    fn score_memo_computes_once() {
        let caches = SearchCaches::new(0);
        let canon = vec![(0u32, 2u32)];
        let a = caches.score_or_compute(&canon, || 0.75);
        let b = caches.score_or_compute(&canon, || panic!("memoized"));
        assert_eq!(a, 0.75);
        assert_eq!(b, 0.75);
        assert_eq!(caches.score_stats().hits, 1);
    }
}
