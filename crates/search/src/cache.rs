//! Cross-query caches for the online search path.
//!
//! A long-lived serving deployment (`ver-serve`) answers many queries
//! against one immutable discovery index. Two pieces of per-query work are
//! pure functions of that index and therefore safe to share across queries
//! and sessions:
//!
//! * **materialized candidate views** — executing a (join graph, projection)
//!   candidate always yields the same view, so an LRU over candidates
//!   short-circuits the MATERIALIZER for candidates that recur across
//!   queries (the common case: different example queries over the same
//!   popular tables resolve to the same join graphs);
//! * **join-graph containment scores** — [`join_score`] folds the
//!   hypergraph's signature-estimated containments with profile key-ness;
//!   it is fully determined by the graph's canonical edge form
//!   ([`graph_canon`]), so a memo keyed by that form skips re-scoring.
//!
//! Correctness contract: a cache **hit must be bit-identical to the value a
//! miss would compute**. The score memo keys on the canonical edge form
//! (edge *sets* determine scores — the mean over edges is
//! order-independent). The view cache keys on the *execution form* — the
//! graph's oriented edge list in order plus the projection — because plan
//! linearisation (and hence provenance and execution order) follows edge
//! order; keying on the weaker canonical form could return a view whose
//! provenance lists tables in a different order. With these keys, cached
//! and uncached runs produce identical [`SearchOutput`]s, which
//! `tests/serve_warm_start.rs` pins against the golden snapshot.
//!
//! [`join_score`]: crate::rank::join_score
//! [`graph_canon`]: crate::rank::graph_canon
//! [`SearchOutput`]: crate::search::SearchOutput

use std::sync::Arc;
use ver_common::cache::{CacheStats, LruCache, Memo};
use ver_common::ids::ColumnRef;
use ver_engine::view::View;
use ver_index::JoinGraph;

/// Key identifying one execution candidate exactly: the join graph's
/// oriented edges in execution order, plus the projected columns.
pub type ViewKey = (Vec<(u32, u32)>, Arc<[ColumnRef]>);

/// Build the [`ViewKey`] for a (graph, projection) candidate.
pub fn view_key(graph: &JoinGraph, projection: &Arc<[ColumnRef]>) -> ViewKey {
    (
        graph.edges.iter().map(|e| (e.left.0, e.right.0)).collect(),
        projection.clone(),
    )
}

/// Shared caches threaded through [`join_graph_search_cached`].
///
/// All methods take `&self`; the struct is `Sync` and intended to live in an
/// `Arc`'d serving engine queried from many threads.
///
/// [`join_graph_search_cached`]: crate::search::join_graph_search_cached
#[derive(Debug)]
pub struct SearchCaches {
    /// LRU over materialized candidate views.
    views: LruCache<ViewKey, View>,
    /// Memoized signature/containment-derived join scores, keyed by the
    /// graph's canonical edge form.
    scores: Memo<Vec<(u32, u32)>, f64>,
}

impl SearchCaches {
    /// Caches with the given view-LRU capacity (`0` disables view caching;
    /// the score memo is unbounded — scores are 8 bytes per distinct graph).
    pub fn new(view_capacity: usize) -> Self {
        SearchCaches {
            views: LruCache::new(view_capacity),
            scores: Memo::new(),
        }
    }

    /// Hit/miss snapshot of the materialized-view LRU.
    pub fn view_stats(&self) -> CacheStats {
        self.views.stats()
    }

    /// Hit/miss snapshot of the join-score memo.
    pub fn score_stats(&self) -> CacheStats {
        self.scores.stats()
    }

    /// Number of views currently cached.
    pub fn cached_views(&self) -> usize {
        self.views.len()
    }

    /// Memoized join score for a graph with canonical form `canon`.
    pub fn score_or_compute(&self, canon: &Vec<(u32, u32)>, compute: impl FnOnce() -> f64) -> f64 {
        self.scores.get_or_insert_with(canon, compute)
    }

    /// Cached view for `key`, or materialize-and-remember. Errors are never
    /// cached (a transient failure must not poison the cache).
    pub fn view_or_materialize(
        &self,
        key: ViewKey,
        materialize: impl FnOnce() -> ver_common::error::Result<View>,
    ) -> ver_common::error::Result<View> {
        if let Some(hit) = self.views.get(&key) {
            return Ok(hit);
        }
        let view = materialize()?;
        self.views.insert(key, view.clone());
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::error::VerError;
    use ver_common::ids::{ColumnId, TableId, ViewId};
    use ver_engine::view::Provenance;
    use ver_index::JoinGraphEdge;
    use ver_store::table::TableBuilder;

    fn projection(cols: &[(u32, u16)]) -> Arc<[ColumnRef]> {
        cols.iter()
            .map(|&(t, o)| ColumnRef {
                table: TableId(t),
                ordinal: o,
            })
            .collect()
    }

    fn graph(edges: &[(u32, u32)]) -> JoinGraph {
        JoinGraph {
            edges: edges
                .iter()
                .map(|&(l, r)| JoinGraphEdge {
                    left: ColumnId(l),
                    right: ColumnId(r),
                    score: 0.9,
                })
                .collect(),
        }
    }

    fn dummy_view(rows: usize) -> View {
        let mut b = TableBuilder::new("v", &["x"]);
        for i in 0..rows {
            b.push_row(vec![ver_common::value::Value::Int(i as i64)])
                .unwrap();
        }
        View::new(ViewId(0), b.build(), Provenance::default())
    }

    #[test]
    fn view_key_distinguishes_edge_order_and_orientation() {
        let p = projection(&[(0, 0), (1, 1)]);
        let a = view_key(&graph(&[(0, 2), (2, 4)]), &p);
        let b = view_key(&graph(&[(2, 4), (0, 2)]), &p);
        let c = view_key(&graph(&[(2, 0), (2, 4)]), &p);
        assert_ne!(a, b, "execution order is part of the key");
        assert_ne!(a, c, "orientation is part of the key");
        assert_eq!(a, view_key(&graph(&[(0, 2), (2, 4)]), &p));
    }

    #[test]
    fn view_cache_hits_skip_materialization() {
        let caches = SearchCaches::new(8);
        let key = view_key(&graph(&[(0, 2)]), &projection(&[(0, 0)]));
        let v1 = caches
            .view_or_materialize(key.clone(), || Ok(dummy_view(3)))
            .unwrap();
        let v2 = caches
            .view_or_materialize(key, || panic!("must be served from cache"))
            .unwrap();
        assert!(v1.same_contents(&v2));
        let s = caches.view_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(caches.cached_views(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let caches = SearchCaches::new(8);
        let key = view_key(&graph(&[(0, 2)]), &projection(&[(0, 0)]));
        let err = caches
            .view_or_materialize(key.clone(), || Err(VerError::JoinError("transient".into())));
        assert!(err.is_err());
        // The next attempt recomputes and succeeds.
        let ok = caches.view_or_materialize(key, || Ok(dummy_view(1)));
        assert!(ok.is_ok());
        assert_eq!(caches.cached_views(), 1);
    }

    #[test]
    fn score_memo_computes_once() {
        let caches = SearchCaches::new(0);
        let canon = vec![(0u32, 2u32)];
        let a = caches.score_or_compute(&canon, || 0.75);
        let b = caches.score_or_compute(&canon, || panic!("memoized"));
        assert_eq!(a, 0.75);
        assert_eq!(b, 0.75);
        assert_eq!(caches.score_stats().hits, 1);
    }
}
