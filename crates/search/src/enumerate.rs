//! Combination enumeration with the non-joinable cache (Algorithm 5,
//! lines 1-10).
//!
//! A *combination* picks one candidate column per query attribute; its
//! *table group* is the set of tables those columns live in. Join graphs are
//! generated per distinct table group (many combinations share a group).
//! When a table pair proves non-joinable, the pair is cached and every
//! combination containing it is skipped without touching the index — the
//! paper's "non-joinable pairs are cached to skip computation".

use ver_common::fxhash::{FxHashMap, FxHashSet};
use ver_common::ids::{ColumnId, TableId};
use ver_index::{DiscoveryIndex, JoinGraph};
use ver_select::SelectionResult;

/// One candidate combination: a column per query attribute plus its table
/// group (sorted, deduped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Combination {
    /// Chosen column per query attribute (query order).
    pub columns: Vec<ColumnId>,
    /// Sorted distinct tables of those columns.
    pub tables: Vec<TableId>,
}

/// Result of the enumeration stage.
#[derive(Debug, Default)]
pub struct Enumeration {
    /// Combinations that survived the non-joinable cache, paired with the
    /// index of their table group in `groups`.
    pub combinations: Vec<(Combination, usize)>,
    /// Distinct joinable table groups and their join graphs.
    pub groups: Vec<(Vec<TableId>, Vec<JoinGraph>)>,
    /// Combinations skipped because of a cached non-joinable pair.
    pub skipped_by_cache: usize,
    /// Total combinations enumerated (before pruning).
    pub total_combinations: usize,
}

impl Enumeration {
    /// Number of joinable table groups ("No. of Joinable Groups" in
    /// Figs. 5/6/8).
    pub fn joinable_group_count(&self) -> usize {
        self.groups.iter().filter(|(_, g)| !g.is_empty()).count()
    }

    /// Total join graphs across groups.
    pub fn join_graph_count(&self) -> usize {
        self.groups.iter().map(|(_, g)| g.len()).sum()
    }
}

/// Enumerate combinations of `selection`'s per-attribute candidates and
/// resolve each group's join graphs via the index.
///
/// `max_combinations` bounds the cartesian product (ill-specified queries
/// can produce millions of combinations; the paper's COLUMN-SELECTION
/// rationale calls out detecting those).
pub fn enumerate_combinations(
    index: &DiscoveryIndex,
    selection: &SelectionResult,
    rho: usize,
    max_combinations: usize,
) -> Enumeration {
    let per_attr: Vec<Vec<ColumnId>> = selection
        .per_attribute
        .iter()
        .map(|a| a.candidates.iter().map(|c| c.id).collect())
        .collect();
    if per_attr.iter().any(|c| c.is_empty()) {
        return Enumeration::default();
    }

    let mut non_joinable: FxHashSet<(TableId, TableId)> = FxHashSet::default();
    let mut group_index: FxHashMap<Vec<TableId>, usize> = FxHashMap::default();
    let mut out = Enumeration::default();

    let mut counters = vec![0usize; per_attr.len()];
    'outer: loop {
        if out.total_combinations >= max_combinations {
            break;
        }
        out.total_combinations += 1;

        let columns: Vec<ColumnId> = counters
            .iter()
            .zip(&per_attr)
            .map(|(&i, cands)| cands[i])
            .collect();
        let mut tables: Vec<TableId> = columns.iter().map(|&c| index.table_of(c)).collect();
        tables.sort_unstable();
        tables.dedup();

        // Cache check: any known non-joinable pair in this group?
        let cached_bad = pair_iter(&tables).any(|p| non_joinable.contains(&p));
        if cached_bad {
            out.skipped_by_cache += 1;
        } else {
            let gi = match group_index.get(&tables) {
                Some(&gi) => gi,
                None => {
                    let graphs = index.generate_join_graphs(&tables, rho);
                    if graphs.is_empty() {
                        // Find and cache the offending pair(s).
                        for (a, b) in pair_iter(&tables) {
                            if index.unjoinable(a, b, rho) {
                                non_joinable.insert((a, b));
                            }
                        }
                    }
                    let gi = out.groups.len();
                    group_index.insert(tables.clone(), gi);
                    out.groups.push((tables.clone(), graphs));
                    gi
                }
            };
            if !out.groups[gi].1.is_empty() {
                out.combinations.push((Combination { columns, tables }, gi));
            }
        }

        // Advance mixed-radix counter.
        for a in 0..per_attr.len() {
            counters[a] += 1;
            if counters[a] < per_attr[a].len() {
                continue 'outer;
            }
            counters[a] = 0;
        }
        break;
    }
    out
}

fn pair_iter(tables: &[TableId]) -> impl Iterator<Item = (TableId, TableId)> + '_ {
    tables
        .iter()
        .enumerate()
        .flat_map(move |(i, &a)| tables[i + 1..].iter().map(move |&b| (a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_qbe::query::{ExampleQuery, QueryColumn};
    use ver_select::{column_selection, SelectionConfig};
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    /// airports(iata, state) ⟷ states(state, pop); island(thing) disjoint.
    fn setup() -> DiscoveryIndex {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..40).map(|i| format!("st{i}")).collect();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("AP{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("states", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(i as i64 * 1000)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        // island has two columns with the same value space so a query can
        // produce two candidates in the same (unjoinable) table.
        let mut b = TableBuilder::new("island", &["thing", "thing_alias"]);
        for i in 0..40 {
            b.push_row(vec![
                Value::text(format!("thing{i}")),
                Value::text(format!("thing{}", (i + 1) % 40)),
            ])
            .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn select(idx: &DiscoveryIndex, q: &ExampleQuery) -> SelectionResult {
        column_selection(
            idx,
            q,
            &SelectionConfig {
                theta: usize::MAX,
                ..Default::default()
            },
        )
    }

    #[test]
    fn same_table_combination_yields_empty_join_graph() {
        let idx = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["AP1", "AP2"]),
            QueryColumn::of_strs(&["st1", "st2"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let e = enumerate_combinations(&idx, &sel, 2, 10_000);
        assert!(e.joinable_group_count() >= 1);
        // The (airports.iata, airports.state) combination is single-table.
        let single = e
            .combinations
            .iter()
            .find(|(c, _)| c.tables.len() == 1)
            .expect("single-table combination");
        assert_eq!(e.groups[single.1].1[0].hops(), 0);
    }

    #[test]
    fn cross_table_combination_finds_join_graphs() {
        let idx = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["AP1", "AP2"]),
            QueryColumn::of_strs(&["1000", "2000"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let e = enumerate_combinations(&idx, &sel, 2, 10_000);
        assert_eq!(e.joinable_group_count(), 1);
        assert!(e.join_graph_count() >= 1);
        let (c, gi) = &e.combinations[0];
        assert_eq!(c.tables.len(), 2);
        assert_eq!(e.groups[*gi].1[0].hops(), 1);
    }

    #[test]
    fn disjoint_tables_are_cached_not_retried() {
        let idx = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["AP1", "AP2"]),       // airports only
            QueryColumn::of_strs(&["thing1", "thing2"]), // island only
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let e = enumerate_combinations(&idx, &sel, 2, 10_000);
        assert_eq!(e.joinable_group_count(), 0);
        assert!(e.combinations.is_empty());
    }

    #[test]
    fn cache_skips_subsequent_combinations() {
        let idx = setup();
        // attr1 "thing1" matches both island columns → two combinations with
        // the same unjoinable {airports, island} pair; the second must be
        // skipped by the cache, not re-probed.
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["AP1", "AP2"]), // airports.iata only
            QueryColumn::of_strs(&["thing1"]),     // island.thing & island.thing_alias
        ])
        .unwrap();
        let sel = select(&idx, &q);
        assert_eq!(sel.per_attribute[1].candidates.len(), 2);
        let e = enumerate_combinations(&idx, &sel, 2, 10_000);
        assert_eq!(e.skipped_by_cache, 1, "second combination skipped by cache");
        assert!(e.combinations.is_empty());
    }

    #[test]
    fn empty_selection_short_circuits() {
        let idx = setup();
        let q = ExampleQuery::new(vec![QueryColumn::of_strs(&["nope"])]).unwrap();
        let sel = select(&idx, &q);
        let e = enumerate_combinations(&idx, &sel, 2, 10_000);
        assert_eq!(e.total_combinations, 0);
        assert!(e.combinations.is_empty());
    }

    #[test]
    fn max_combinations_caps_enumeration() {
        let idx = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["st3", "st4"]),
        ])
        .unwrap();
        let sel = select(&idx, &q);
        let e = enumerate_combinations(&idx, &sel, 2, 2);
        assert_eq!(e.total_combinations, 2);
    }
}
