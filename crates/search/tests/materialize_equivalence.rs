//! Property tests for invariant 9: the shared sub-join DAG executor is
//! bit-identical to independent per-candidate execution.
//!
//! Two levels, both over randomly generated catalogs:
//!
//! * **Planner level** — random batches of valid [`PjPlan`]s (overlapping
//!   prefixes, empty joins, projection-only plans) run through
//!   [`MaterializePlanner::plan_batch`] must reproduce
//!   [`execute_plan`]'s per-candidate output *exactly* — same rows in the
//!   same order, same schema, same provenance — for every thread count.
//! * **Search level** — [`SearchContext::search`] with
//!   `dag_materialize: true` vs `false` must produce the same ranked
//!   views ([`View::same_contents`]) and statistics for random queries,
//!   top-k cuts, and thread counts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use ver_common::ids::{ColumnRef, TableId};
use ver_common::pool::ThreadPool;
use ver_common::value::Value;
use ver_engine::exec::execute_plan;
use ver_engine::plan::{JoinStep, PjPlan};
use ver_index::{build_index, DiscoveryIndex, IndexConfig};
use ver_qbe::query::{ExampleQuery, QueryColumn};
use ver_search::{MaterializePlanner, SearchConfig, SearchContext};
use ver_select::{column_selection, SelectionConfig};
use ver_store::catalog::TableCatalog;
use ver_store::table::TableBuilder;

fn cref(t: u32, o: u16) -> ColumnRef {
    ColumnRef {
        table: TableId(t),
        ordinal: o,
    }
}

/// Random joinable corpus: `n_tables` two-column tables ("k", "v") whose
/// keys draw from a small shared domain. A random per-table domain offset
/// makes some pairs overlap fully, some partially, and some not at all, so
/// generated joins exercise matching, skew (duplicate keys on both sides),
/// and empty intermediates.
fn random_catalog(seed: u64, n_tables: usize) -> TableCatalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = rng.gen_range(3..8usize);
    let mut cat = TableCatalog::new();
    for t in 0..n_tables {
        let offset = rng.gen_range(0..3usize) * (domain / 2);
        let rows = rng.gen_range(6..30usize);
        let mut b = TableBuilder::new(format!("t{t}"), &["k", "v"]);
        for _ in 0..rows {
            let k = offset + rng.gen_range(0..domain);
            let v = rng.gen_range(0..5i64);
            b.push_row(vec![Value::text(format!("k{k}")), Value::Int(v)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
    }
    cat
}

/// Random batch of plans guaranteed to pass `PjPlan::validate`: each plan
/// grows a join tree over distinct tables (every step's left table already
/// joined, right table new) and projects 1-3 in-plan columns. Small table
/// counts make prefix collisions — the DAG's sharing opportunity — common.
fn random_plans(seed: u64, n_tables: usize, n_plans: usize) -> Vec<(PjPlan, f64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut plans = Vec::with_capacity(n_plans);
    for _ in 0..n_plans {
        let base = rng.gen_range(0..n_tables as u32);
        let mut visited = vec![base];
        let mut joins = Vec::new();
        for _ in 0..rng.gen_range(0..3usize) {
            if visited.len() == n_tables {
                break;
            }
            let left = visited[rng.gen_range(0..visited.len())];
            let right = loop {
                let r = rng.gen_range(0..n_tables as u32);
                if !visited.contains(&r) {
                    break r;
                }
            };
            visited.push(right);
            joins.push(JoinStep {
                left: cref(left, 0),
                right: cref(right, 0),
            });
        }
        let projection = (0..rng.gen_range(1..4usize))
            .map(|_| {
                let t = visited[rng.gen_range(0..visited.len())];
                cref(t, rng.gen_range(0..2u16))
            })
            .collect();
        let score = rng.gen_range(0.0..1.0f64);
        plans.push((
            PjPlan {
                base: TableId(base),
                joins,
                projection,
            },
            score,
        ));
    }
    plans
}

fn index_for(cat: &TableCatalog) -> DiscoveryIndex {
    build_index(
        cat,
        IndexConfig {
            threads: 1,
            verify_exact: true,
            ..Default::default()
        },
    )
    .expect("index build")
}

// Planner level: batched DAG execution ≡ independent execution,
// table-exact (rows AND row order), for every thread count.
proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn plan_batch_reproduces_independent_execution(
        seed in 0u64..1_000_000,
        n_tables in 3usize..6,
        n_plans in 1usize..8,
    ) {
        let cat = random_catalog(seed, n_tables);
        let plans = random_plans(seed, n_tables, n_plans);
        let planner = MaterializePlanner::new(&cat);
        for threads in [1usize, 2, 0] {
            let (views, stats) = planner.plan_batch(&plans, ThreadPool::new(threads));
            prop_assert_eq!(views.len(), plans.len());
            prop_assert_eq!(stats.candidates, plans.len());
            prop_assert_eq!(stats.shared_hits, stats.total_steps - stats.distinct_steps);
            for ((plan, score), batched) in plans.iter().zip(&views) {
                let independent = execute_plan(&cat, plan, *score).expect("valid plan");
                let batched = batched.as_ref().expect("batch result");
                prop_assert_eq!(
                    &batched.table, &independent.table,
                    "threads={}: batched rows/order/schema differ", threads
                );
                prop_assert_eq!(&batched.provenance, &independent.provenance);
            }
        }
    }
}

// Search level: the `dag_materialize` flag never changes the output —
// same stats, same ranked views — across random corpora, k, threads.
// Search-level cases build a discovery index each, so fewer cases.
proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn dag_flag_never_changes_search_output(
        seed in 0u64..1_000_000,
        k in 1usize..10,
        thread_pick in 0usize..3,
    ) {
        let threads = [1usize, 2, 0][thread_pick];
        let cat = random_catalog(seed, 4);
        let idx = index_for(&cat);
        let query = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["k1", "k2"]),
            QueryColumn::of_strs(&["1", "2"]),
        ]).unwrap();
        let sel = column_selection(&idx, &query, &SelectionConfig::default());
        let cx = SearchContext::new(&cat, &idx);
        let run = |dag_materialize: bool| {
            cx.search(&sel, &SearchConfig {
                k,
                threads,
                dag_materialize,
                ..Default::default()
            }).expect("search")
        };
        let dag = run(true);
        let independent = run(false);
        prop_assert_eq!(dag.stats, independent.stats);
        prop_assert_eq!(dag.views.len(), independent.views.len());
        for (a, b) in dag.views.iter().zip(&independent.views) {
            prop_assert!(
                a.same_contents(b),
                "k={} threads={}: view {} differs across executors", k, threads, a.id
            );
        }
    }
}
