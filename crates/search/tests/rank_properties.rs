//! Property tests for join-graph ranking: the ranked order is a total
//! order on graph *content* — permutation-invariant (shuffling the
//! candidate input never changes the output order of distinct graphs) with
//! deterministic tie-breaking by canonical edge form. This is the contract
//! the parallel online path needs for bit-identical results across thread
//! counts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::OnceLock;
use ver_common::fxhash::FxHashSet;
use ver_common::ids::ColumnId;
use ver_common::value::Value;
use ver_index::{build_index, DiscoveryIndex, IndexConfig, JoinGraph, JoinGraphEdge};
use ver_search::rank::{graph_canon, join_score, rank_join_graphs, rank_order};
use ver_store::catalog::TableCatalog;
use ver_store::table::TableBuilder;

const COLUMNS: u32 = 8;

/// Eight single-column tables with distinct ratios spread across (0, 1], so
/// generated edges hit varied key-ness. Built once; ranking is read-only.
fn index() -> &'static DiscoveryIndex {
    static INDEX: OnceLock<DiscoveryIndex> = OnceLock::new();
    INDEX.get_or_init(|| {
        let mut cat = TableCatalog::new();
        for t in 0..COLUMNS {
            let mut b = TableBuilder::new(format!("t{t}"), &["c"]);
            // t distinct-classes out of 40 rows: t=0 → all equal, t=7 → near-unique.
            let classes = 1 + 5 * t as usize;
            for i in 0..40 {
                b.push_row(vec![Value::text(format!("v{}", i % classes))])
                    .unwrap();
            }
            cat.add_table(b.build()).unwrap();
        }
        build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .expect("index build")
    })
}

/// Strategy output → graphs, deduplicated by canonical form so every graph
/// occupies a distinct rank slot (identical graphs are interchangeable by
/// construction, so invariance is only meaningful across distinct ones).
fn graphs_of(raw: Vec<Vec<(u32, u32, f64)>>) -> Vec<JoinGraph> {
    let mut seen: FxHashSet<Vec<(u32, u32)>> = FxHashSet::default();
    let mut graphs = Vec::new();
    for edges in raw {
        let g = JoinGraph {
            edges: edges
                .into_iter()
                .map(|(l, r, s)| JoinGraphEdge {
                    left: ColumnId(l),
                    right: ColumnId(r),
                    score: s as f32,
                })
                .collect(),
        };
        if seen.insert(graph_canon(&g)) {
            graphs.push(g);
        }
    }
    graphs
}

fn raw_graphs() -> impl Strategy<Value = Vec<Vec<(u32, u32, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..COLUMNS, 0u32..COLUMNS, 0.0f64..1.0), 0..4),
        1..16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn ranking_is_permutation_invariant(raw in raw_graphs(), seed in 0u64..1_000_000) {
        let idx = index();
        let graphs = graphs_of(raw);

        let mut original: Vec<(JoinGraph, usize)> =
            graphs.iter().cloned().enumerate().map(|(i, g)| (g, i)).collect();
        let mut shuffled = original.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));

        rank_join_graphs(idx, &mut original);
        rank_join_graphs(idx, &mut shuffled);

        let canon_a: Vec<_> = original.iter().map(|(g, _)| graph_canon(g)).collect();
        let canon_b: Vec<_> = shuffled.iter().map(|(g, _)| graph_canon(g)).collect();
        prop_assert_eq!(canon_a, canon_b, "shuffle changed the ranked order");
    }

    #[test]
    fn ranking_is_a_total_order_with_canonical_ties(raw in raw_graphs()) {
        let idx = index();
        let mut graphs: Vec<(JoinGraph, usize)> =
            graphs_of(raw).into_iter().enumerate().map(|(i, g)| (g, i)).collect();
        rank_join_graphs(idx, &mut graphs);

        for w in graphs.windows(2) {
            let (sa, sb) = (join_score(idx, &w[0].0), join_score(idx, &w[1].0));
            prop_assert!(sa >= sb, "scores must be non-increasing: {} < {}", sa, sb);
            if sa == sb {
                prop_assert!(
                    graph_canon(&w[0].0) <= graph_canon(&w[1].0),
                    "equal scores must order by canonical form"
                );
            }
        }
    }

    #[test]
    fn ranking_twice_is_idempotent(raw in raw_graphs()) {
        let idx = index();
        let mut once: Vec<(JoinGraph, usize)> =
            graphs_of(raw).into_iter().enumerate().map(|(i, g)| (g, i)).collect();
        rank_join_graphs(idx, &mut once);
        let mut twice = once.clone();
        rank_join_graphs(idx, &mut twice);
        let a: Vec<usize> = once.iter().map(|&(_, i)| i).collect();
        let b: Vec<usize> = twice.iter().map(|&(_, i)| i).collect();
        prop_assert_eq!(a, b, "re-ranking a ranked list must be a no-op");
    }

    #[test]
    fn rank_order_is_antisymmetric_and_consistent(
        sa in 0.0f64..1.0,
        sb in 0.0f64..1.0,
        ca in prop::collection::vec((0u32..COLUMNS, 0u32..COLUMNS), 0..3),
        cb in prop::collection::vec((0u32..COLUMNS, 0u32..COLUMNS), 0..3),
    ) {
        let ab = rank_order(sa, &ca, sb, &cb);
        let ba = rank_order(sb, &cb, sa, &ca);
        prop_assert_eq!(ab, ba.reverse(), "comparator must be antisymmetric");
        // Equal keys compare equal; distinct keys never do.
        if sa == sb && ca == cb {
            prop_assert_eq!(ab, std::cmp::Ordering::Equal);
        }
        if ab == std::cmp::Ordering::Equal {
            prop_assert!(sa == sb && ca == cb, "only identical keys may tie");
        }
    }
}
