//! Equivalence suite for the vectorized sketching engine: the dispatched
//! SIMD kernels must be **bit-identical** to their scalar references for
//! every input shape — arbitrary k (including k not a multiple of the lane
//! width), empty columns, all-duplicate columns, skewed cardinalities.
//! Together with `tests/parallel_determinism.rs` and the golden snapshots
//! this pins determinism invariant #8 (ARCHITECTURE.md): `VER_SIMD=0` and
//! the auto backend build identical indexes.

use proptest::prelude::*;
use ver_common::fxhash::fx_hash_u64;
use ver_common::pool::ThreadPool;
use ver_common::value::Value;
use ver_index::{
    estimated_jaccard, exact_containment, exact_jaccard, hashed_containment, hashed_jaccard,
    LshIndex, MinHasher,
};
use ver_store::column::Column;

/// Sorted, deduplicated hash vector — the contract of
/// [`ver_store::column::Column::distinct_hashes`].
fn sorted_hashes(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn blocked_sketch_matches_scalar_for_any_k(
        k in 1usize..70,
        seed in any::<u64>(),
        hashes in prop::collection::vec(any::<u64>(), 0..400),
    ) {
        let h = MinHasher::new(k, seed);
        let scalar = h.signature_of_hashes_scalar(hashes.iter().copied(), hashes.len());
        let simd = h.signature_of_hash_slice(&hashes, hashes.len());
        prop_assert_eq!(scalar, simd, "k = {}", k);
    }

    #[test]
    fn all_duplicate_streams_sketch_like_singletons(
        k in 1usize..40,
        value in any::<u64>(),
        copies in 1usize..200,
    ) {
        // MinHash minima ignore duplicates: a stream of one repeated hash
        // must sketch exactly like the single hash, on both kernels.
        let h = MinHasher::new(k, 99);
        let dup: Vec<u64> = vec![value; copies];
        let single = [value];
        prop_assert_eq!(
            h.signature_of_hash_slice(&dup, 1),
            h.signature_of_hash_slice(&single, 1)
        );
        prop_assert_eq!(
            h.signature_of_hashes_scalar(dup.iter().copied(), 1),
            h.signature_of_hash_slice(&dup, 1)
        );
    }

    #[test]
    fn containment_and_jaccard_agree_with_scalar_merge(
        a in sorted_hashes(500),
        b in sorted_hashes(500),
        shared in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        // Inject shared elements so intersections are non-trivial.
        let mut a = a;
        let mut b = b;
        a.extend(&shared);
        b.extend(&shared);
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let inter = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
        let expect_containment = if a.is_empty() { 0.0 } else { inter as f64 / a.len() as f64 };
        prop_assert_eq!(hashed_containment(&a, &b), expect_containment);
        let expect_jaccard = if a.is_empty() && b.is_empty() {
            1.0
        } else {
            inter as f64 / (a.len() + b.len() - inter) as f64
        };
        prop_assert_eq!(hashed_jaccard(&a, &b), expect_jaccard);
    }

    #[test]
    fn skewed_cardinalities_hit_the_gallop_path_identically(
        small in sorted_hashes(24),
        stride in 1u64..5000,
        large_len in 400usize..1200,
    ) {
        // |large| ≫ |small| forces the galloping path when SIMD is active;
        // counts must match the scalar reference exactly.
        let large: Vec<u64> = (0..large_len as u64).map(|i| i.wrapping_mul(stride)).collect();
        let mut large = large;
        large.sort_unstable();
        large.dedup();
        let inter = small.iter().filter(|x| large.binary_search(x).is_ok()).count();
        let expect = if small.is_empty() { 0.0 } else { inter as f64 / small.len() as f64 };
        prop_assert_eq!(hashed_containment(&small, &large), expect);
    }

    #[test]
    fn estimated_jaccard_match_count_is_exact(
        k in 1usize..50,
        overlap in 0usize..300,
    ) {
        let h = MinHasher::new(k, 5);
        let a_col: Column = (0..400i64).map(Value::Int).collect();
        let b_col: Column = ((overlap as i64)..(overlap as i64 + 400)).map(Value::Int).collect();
        let (sa, sb) = (h.signature_of_column(&a_col), h.signature_of_column(&b_col));
        let matches = sa.sig.iter().zip(&sb.sig).filter(|(x, y)| x == y).count();
        prop_assert_eq!(estimated_jaccard(&sa, &sb), matches as f64 / k as f64);
    }

    #[test]
    fn batched_band_hashes_match_fx_hash_per_band(
        bands in 1usize..40,
        rows in 1usize..6,
        len in 0i64..300,
    ) {
        let h = MinHasher::new(bands * rows, 11);
        let col: Column = (0..len).map(Value::Int).collect();
        let sig = h.signature_of_column(&col);
        let idx = LshIndex::new(bands, rows);
        let batched = idx.band_hashes(&sig);
        prop_assert_eq!(batched.len(), bands);
        for (band, &bh) in batched.iter().enumerate() {
            let reference = fx_hash_u64(&sig.sig[band * rows..(band + 1) * rows]);
            prop_assert_eq!(bh, reference, "bands={} rows={} band={}", bands, rows, band);
        }
    }

    #[test]
    fn batch_insertion_buckets_like_sequential(
        n_cols in 0usize..16,
        threads in 1usize..5,
    ) {
        let h = MinHasher::new(32, 2);
        let sigs: Vec<_> = (0..n_cols)
            .map(|i| {
                let col: Column = (i as i64 * 10..i as i64 * 10 + 50).map(Value::Int).collect();
                h.signature_of_column(&col)
            })
            .collect();
        let mut seq = LshIndex::new(32, 1);
        for (i, sig) in sigs.iter().enumerate() {
            seq.insert(ver_common::ids::ColumnId(i as u32), sig);
        }
        let mut batch = LshIndex::new(32, 1);
        batch.insert_signatures(&sigs, &ThreadPool::new(threads));
        // Candidate sets over every signature must agree exactly.
        for sig in &sigs {
            prop_assert_eq!(seq.candidates(sig, None), batch.candidates(sig, None));
        }
    }

    #[test]
    fn empty_columns_sketch_and_score_consistently(k in 1usize..40) {
        let h = MinHasher::new(k, 123);
        let empty = h.signature_of_column(&Column::new());
        let full = h.signature_of_column(&(0..50i64).map(Value::Int).collect::<Column>());
        prop_assert!(empty.is_empty());
        prop_assert_eq!(&empty.sig, &vec![u64::MAX; k]);
        prop_assert_eq!(estimated_jaccard(&empty, &full), 0.0);
        prop_assert_eq!(estimated_jaccard(&empty, &empty), 1.0);
        let e = Column::new();
        let f: Column = (0..50i64).map(Value::Int).collect();
        prop_assert_eq!(exact_containment(&e, &f), 0.0);
        prop_assert_eq!(exact_jaccard(&e, &e), 1.0);
    }
}
