//! Corruption suite for the persisted index artifact (`VERIDX\x03`).
//!
//! The crash-safety contract under test: **any** single-byte flip and
//! **any** truncation of a saved index must come back from
//! [`index_from_bytes`] as `VerError::Serde` — never a panic, never a
//! successfully-loaded wrong index. The whole-file trailer checksum is
//! verified before any parsing, which is what makes the property hold at
//! *every* offset (payloads, length fields, section checksums, the trailer
//! itself, even the magic — a damaged magic falls through to the
//! bad-magic error, still `Serde`). Alongside the properties, the legacy
//! `VERIDX\x02` read-compat path is pinned: both formats load back
//! [`DiscoveryIndex::same_contents`]-identical to the in-memory original.

use proptest::prelude::*;
use std::sync::OnceLock;
use ver_common::error::VerError;
use ver_common::value::Value;
use ver_index::persist::{index_from_bytes, index_to_bytes, index_to_bytes_v2};
use ver_index::{build_index, DiscoveryIndex, IndexConfig};
use ver_store::catalog::TableCatalog;
use ver_store::table::TableBuilder;

/// Small two-table catalog with joinable text columns, ints and nulls —
/// enough to populate every section of the artifact.
fn catalog() -> TableCatalog {
    let mut cat = TableCatalog::new();
    let states: Vec<String> = (0..50).map(|i| format!("state_{i}")).collect();
    let mut b = TableBuilder::new("airports", &["iata", "state"]);
    for (i, s) in states.iter().take(40).enumerate() {
        b.push_row(vec![
            Value::text(format!("A{i:03}")),
            Value::text(s.clone()),
        ])
        .unwrap();
    }
    cat.add_table(b.build()).unwrap();
    let mut b = TableBuilder::new("states", &["name", "pop"]);
    for (i, s) in states.iter().enumerate() {
        let pop = if i % 7 == 0 {
            Value::Null
        } else {
            Value::Int(1000 + i as i64)
        };
        b.push_row(vec![Value::text(s.clone()), pop]).unwrap();
    }
    cat.add_table(b.build()).unwrap();
    cat
}

fn index() -> &'static DiscoveryIndex {
    static IDX: OnceLock<DiscoveryIndex> = OnceLock::new();
    IDX.get_or_init(|| {
        build_index(
            &catalog(),
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    })
}

/// The canonical `\x03` artifact, built once for all properties.
fn v3_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| index_to_bytes(index()).to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn any_single_byte_flip_fails_with_serde(
        offset_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let bytes = v3_bytes();
        let offset = (offset_seed % bytes.len() as u64) as usize;
        let mut bad = bytes.to_vec();
        bad[offset] ^= 1u8 << bit;
        match index_from_bytes(&bad) {
            Err(VerError::Serde(_)) => {}
            Ok(_) => prop_assert!(
                false,
                "flip at offset {offset} bit {bit} loaded successfully"
            ),
            Err(e) => prop_assert!(
                false,
                "flip at offset {offset} bit {bit}: non-Serde error {e:?}"
            ),
        }
    }

    #[test]
    fn any_truncation_fails_with_serde(len_seed in any::<u64>()) {
        let bytes = v3_bytes();
        // Every proper prefix, including the empty one.
        let keep = (len_seed % bytes.len() as u64) as usize;
        match index_from_bytes(&bytes[..keep]) {
            Err(VerError::Serde(_)) => {}
            Ok(_) => prop_assert!(false, "truncation to {keep} bytes loaded"),
            Err(e) => prop_assert!(false, "truncation to {keep}: non-Serde {e:?}"),
        }
    }

    #[test]
    fn any_two_byte_swap_fails_or_is_identity(
        a_seed in any::<u64>(),
        b_seed in any::<u64>(),
    ) {
        // Transpositions model a different physical failure than flips;
        // swapping two unequal bytes must also be caught by the trailer.
        let bytes = v3_bytes();
        let a = (a_seed % bytes.len() as u64) as usize;
        let b = (b_seed % bytes.len() as u64) as usize;
        let mut bad = bytes.to_vec();
        bad.swap(a, b);
        if bad == bytes {
            // Swapped equal bytes: still the intact artifact.
            prop_assert!(index_from_bytes(&bad).is_ok());
        } else {
            match index_from_bytes(&bad) {
                Err(VerError::Serde(_)) => {}
                Ok(_) => prop_assert!(false, "swap ({a},{b}) loaded"),
                Err(e) => prop_assert!(false, "swap ({a},{b}): non-Serde {e:?}"),
            }
        }
    }
}

#[test]
fn intact_v3_round_trips_to_same_contents() {
    let loaded = index_from_bytes(v3_bytes()).unwrap();
    assert!(loaded.same_contents(index()));
}

#[test]
fn legacy_v2_artifact_still_loads_to_same_contents() {
    // Read-compat: a `\x02` artifact (as written by pre-PR builds) loads
    // through the same entry point and matches the v3 load exactly.
    let v2 = index_to_bytes_v2(index());
    assert_ne!(&v2[..8], &v3_bytes()[..8], "formats must differ in magic");
    let from_v2 = index_from_bytes(&v2).unwrap();
    let from_v3 = index_from_bytes(v3_bytes()).unwrap();
    assert!(from_v2.same_contents(index()));
    assert!(from_v2.same_contents(&from_v3));
    // And re-saving the v2 load produces the canonical v3 bytes.
    assert_eq!(index_to_bytes(&from_v2).as_ref(), v3_bytes());
}

#[test]
fn empty_and_garbage_inputs_are_serde_errors() {
    for bad in [
        &[][..],
        b"VERIDX",
        b"VERIDX\x01\x00",
        b"VERIDX\x04\x00",
        b"not an artifact at all",
        &[0u8; 64][..],
    ] {
        match index_from_bytes(bad) {
            Err(VerError::Serde(_)) => {}
            other => panic!("{bad:?}: expected Serde, got {other:?}"),
        }
    }
}
