//! Join-graph enumeration: the Aurum API's `GENERATE-JOIN-GRAPHS(tables, ρ)`.
//!
//! A *join graph* is a tree over tables whose edges are joinable column
//! pairs from the hypergraph; materialising it (and projecting) yields a
//! candidate PJ-view. Given the set of tables holding a candidate-column
//! combination, this module enumerates every join graph connecting them
//! where each required-pair connection uses at most `ρ` hops (possibly
//! through intermediate tables), exactly the setting of the paper's
//! evaluation (`ρ = 2`).
//!
//! Enumeration strategy: (1) enumerate column-edge *paths* of length ≤ ρ
//! between every required pair (DFS, no repeated tables); (2) enumerate
//! spanning trees over the required tables (Prüfer sequences — required sets
//! are small, ≤ 4 in the paper's workloads); (3) take the Cartesian product
//! of path choices per tree edge, rejecting combinations whose union is not
//! a tree; (4) canonicalise + dedupe. A `max_graphs` cap bounds worst-case
//! blowup on dense corpora.

use crate::hypergraph::JoinHypergraph;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::FxHashSet;
use ver_common::ids::{ColumnId, TableId};

/// One edge of a join graph: join `left`'s column to `right`'s column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinGraphEdge {
    /// Column on one side.
    pub left: ColumnId,
    /// Column on the other side.
    pub right: ColumnId,
    /// Containment score of the inclusion dependency.
    pub score: f32,
}

/// A tree of join edges over tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JoinGraph {
    /// Edges (order not significant; canonicalised on construction).
    pub edges: Vec<JoinGraphEdge>,
}

impl JoinGraph {
    /// Number of join hops.
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// Mean containment score of the edges (1.0 for the empty graph).
    /// Used with size for ranking: the discovery engine "ranks views
    /// according to how well join graphs approximate PK/FK, and according to
    /// the size of the join graph; smaller graphs rank higher".
    pub fn mean_score(&self) -> f64 {
        if self.edges.is_empty() {
            return 1.0;
        }
        self.edges.iter().map(|e| e.score as f64).sum::<f64>() / self.edges.len() as f64
    }

    /// All tables touched, given the hypergraph for column→table resolution.
    pub fn tables(&self, g: &JoinHypergraph) -> Vec<TableId> {
        let mut out: Vec<TableId> = self
            .edges
            .iter()
            .flat_map(|e| [g.table_of(e.left), g.table_of(e.right)])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Canonical form for deduplication: sorted (min, max) column-id pairs.
    fn canon(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|e| {
                let (a, b) = (e.left.0, e.right.0);
                (a.min(b), a.max(b))
            })
            .collect();
        v.sort_unstable();
        v
    }
}

/// A path between two required tables: a sequence of column edges.
type Path = Vec<JoinGraphEdge>;

/// Enumerate column-edge paths of ≤ `max_hops` between `from` and `to`,
/// never revisiting a table.
fn paths_between(
    g: &JoinHypergraph,
    from: TableId,
    to: TableId,
    max_hops: usize,
    threshold: f64,
    cap: usize,
) -> Vec<Path> {
    let mut out = Vec::new();
    let mut stack: Vec<JoinGraphEdge> = Vec::new();
    let mut visited: Vec<TableId> = vec![from];
    dfs(
        g,
        from,
        to,
        max_hops,
        threshold,
        cap,
        &mut stack,
        &mut visited,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &JoinHypergraph,
    cur: TableId,
    to: TableId,
    hops_left: usize,
    threshold: f64,
    cap: usize,
    stack: &mut Vec<JoinGraphEdge>,
    visited: &mut Vec<TableId>,
    out: &mut Vec<Path>,
) {
    if out.len() >= cap || hops_left == 0 {
        return;
    }
    // Direct edges first (shorter paths enumerate earlier).
    for next in g.table_neighbors(cur, threshold) {
        if next == to {
            for (ca, cb, s) in g.edges_between(cur, to, threshold) {
                stack.push(JoinGraphEdge {
                    left: ca,
                    right: cb,
                    score: s,
                });
                out.push(stack.clone());
                stack.pop();
                if out.len() >= cap {
                    return;
                }
            }
        }
    }
    if hops_left == 1 {
        return;
    }
    for next in g.table_neighbors(cur, threshold) {
        if next == to || visited.contains(&next) {
            continue;
        }
        for (ca, cb, s) in g.edges_between(cur, next, threshold) {
            stack.push(JoinGraphEdge {
                left: ca,
                right: cb,
                score: s,
            });
            visited.push(next);
            dfs(
                g,
                next,
                to,
                hops_left - 1,
                threshold,
                cap,
                stack,
                visited,
                out,
            );
            visited.pop();
            stack.pop();
            if out.len() >= cap {
                return;
            }
        }
    }
}

/// Enumerate all labelled trees on `n` nodes via Prüfer sequences.
/// Returns edge lists of node *indices*. `n` is at most the query arity
/// (≤ 4 in the paper's workloads), so `n^(n-2)` stays tiny.
fn labelled_trees(n: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(n >= 1);
    if n == 1 {
        return vec![vec![]];
    }
    if n == 2 {
        return vec![vec![(0, 1)]];
    }
    let seq_len = n - 2;
    let total = n.pow(seq_len as u32);
    let mut trees = Vec::with_capacity(total);
    for code in 0..total {
        // Decode the Prüfer sequence.
        let mut seq = Vec::with_capacity(seq_len);
        let mut c = code;
        for _ in 0..seq_len {
            seq.push(c % n);
            c /= n;
        }
        // Standard Prüfer decoding.
        let mut degree = vec![1usize; n];
        for &s in &seq {
            degree[s] += 1;
        }
        let mut edges = Vec::with_capacity(n - 1);
        let mut leaf_heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| degree[i] == 1)
            .map(std::cmp::Reverse)
            .collect();
        let mut deg = degree;
        for &s in &seq {
            let std::cmp::Reverse(leaf) = leaf_heap.pop().expect("tree has a leaf");
            edges.push((leaf.min(s), leaf.max(s)));
            deg[s] -= 1;
            if deg[s] == 1 {
                leaf_heap.push(std::cmp::Reverse(s));
            }
        }
        let std::cmp::Reverse(u) = leaf_heap.pop().expect("two nodes left");
        let std::cmp::Reverse(v) = leaf_heap.pop().expect("two nodes left");
        edges.push((u.min(v), u.max(v)));
        trees.push(edges);
    }
    trees
}

/// Options for join-graph enumeration.
#[derive(Debug, Clone, Copy)]
pub struct JoinGraphOptions {
    /// Maximum hops per required-pair connection (paper default: 2).
    pub max_hops: usize,
    /// Containment threshold applied when walking the hypergraph.
    pub threshold: f64,
    /// Upper bound on returned join graphs.
    pub max_graphs: usize,
}

impl Default for JoinGraphOptions {
    fn default() -> Self {
        JoinGraphOptions {
            max_hops: 2,
            threshold: 0.8,
            max_graphs: 10_000,
        }
    }
}

/// `GENERATE-JOIN-GRAPHS(tables, ρ)`: all join graphs connecting `tables`.
///
/// Returns the empty-graph singleton when all required columns live in one
/// table, and an empty vec when some pair of tables cannot be connected.
pub fn generate_join_graphs(
    g: &JoinHypergraph,
    tables: &[TableId],
    opts: JoinGraphOptions,
) -> Vec<JoinGraph> {
    let mut required: Vec<TableId> = tables.to_vec();
    required.sort_unstable();
    required.dedup();
    let n = required.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![JoinGraph::default()];
    }

    // Pairwise path sets.
    let mut pair_paths: Vec<Vec<Vec<Path>>> = vec![vec![Vec::new(); n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let p = paths_between(
                g,
                required[i],
                required[j],
                opts.max_hops,
                opts.threshold,
                opts.max_graphs,
            );
            pair_paths[i][j] = p;
        }
    }

    let mut out: Vec<JoinGraph> = Vec::new();
    let mut seen: FxHashSet<Vec<(u32, u32)>> = FxHashSet::default();

    for tree in labelled_trees(n) {
        // Every tree edge needs at least one path.
        if tree.iter().any(|&(i, j)| pair_paths[i][j].is_empty()) {
            continue;
        }
        // Cartesian product over path choices per tree edge.
        let mut choice = vec![0usize; tree.len()];
        'product: loop {
            // Assemble candidate graph.
            let mut edges: Vec<JoinGraphEdge> = Vec::new();
            for (e, &(i, j)) in tree.iter().enumerate() {
                edges.extend(pair_paths[i][j][choice[e]].iter().copied());
            }
            let candidate = JoinGraph { edges };
            if is_tree(g, &candidate) {
                let canon = candidate.canon();
                if seen.insert(canon) {
                    out.push(candidate);
                    if out.len() >= opts.max_graphs {
                        return out;
                    }
                }
            }
            // Advance the mixed-radix counter.
            for e in 0..tree.len() {
                choice[e] += 1;
                if choice[e] < pair_paths[tree[e].0][tree[e].1].len() {
                    continue 'product;
                }
                choice[e] = 0;
            }
            break;
        }
    }
    out
}

/// A join graph is valid iff its edges form a tree over its tables:
/// `#tables == #edges + 1` and connected.
fn is_tree(g: &JoinHypergraph, jg: &JoinGraph) -> bool {
    let tables = jg.tables(g);
    if tables.is_empty() {
        return jg.edges.is_empty();
    }
    if tables.len() != jg.edges.len() + 1 {
        return false;
    }
    // Union-find connectivity.
    let mut parent: Vec<usize> = (0..tables.len()).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    let idx_of = |t: TableId| tables.binary_search(&t).expect("table in list");
    let mut merges = 0;
    for e in &jg.edges {
        let (a, b) = (idx_of(g.table_of(e.left)), idx_of(g.table_of(e.right)));
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            return false; // cycle
        }
        parent[ra] = rb;
        merges += 1;
    }
    merges == tables.len() - 1
}

/// True when two specific tables have no connection within the options —
/// used by Algorithm 5's non-joinable cache.
pub fn unjoinable(g: &JoinHypergraph, a: TableId, b: TableId, opts: JoinGraphOptions) -> bool {
    if a == b {
        return false;
    }
    paths_between(g, a, b, opts.max_hops, opts.threshold, 1).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// T0{C0,C1} T1{C2,C3} T2{C4,C5} T3{C6}:
    /// C1-C2 (T0-T1), C3-C4 (T1-T2), C0-C5 (T0-T2), C6 isolated in T3.
    fn graph() -> JoinHypergraph {
        let col_table = vec![
            TableId(0),
            TableId(0),
            TableId(1),
            TableId(1),
            TableId(2),
            TableId(2),
            TableId(3),
        ];
        let mut g = JoinHypergraph::new(col_table);
        g.add_edge(ColumnId(1), ColumnId(2), 0.95);
        g.add_edge(ColumnId(3), ColumnId(4), 0.9);
        g.add_edge(ColumnId(0), ColumnId(5), 0.85);
        g.finalize();
        g
    }

    fn opts() -> JoinGraphOptions {
        JoinGraphOptions {
            max_hops: 2,
            threshold: 0.8,
            max_graphs: 1000,
        }
    }

    #[test]
    fn single_table_yields_empty_graph() {
        let g = graph();
        let jgs = generate_join_graphs(&g, &[TableId(0)], opts());
        assert_eq!(jgs.len(), 1);
        assert_eq!(jgs[0].hops(), 0);
        assert_eq!(jgs[0].mean_score(), 1.0);
    }

    #[test]
    fn pair_direct_and_via_intermediate() {
        let g = graph();
        // T0–T1: direct (C1-C2) and via T2 (C0-C5, C4-C3) = 2 hops.
        let jgs = generate_join_graphs(&g, &[TableId(0), TableId(1)], opts());
        assert_eq!(jgs.len(), 2);
        let hops: Vec<usize> = jgs.iter().map(JoinGraph::hops).collect();
        assert!(hops.contains(&1));
        assert!(hops.contains(&2));
    }

    #[test]
    fn hop_limit_prunes_long_paths() {
        let g = graph();
        let one_hop = JoinGraphOptions {
            max_hops: 1,
            ..opts()
        };
        let jgs = generate_join_graphs(&g, &[TableId(0), TableId(1)], one_hop);
        assert_eq!(jgs.len(), 1);
        assert_eq!(jgs[0].hops(), 1);
    }

    #[test]
    fn disconnected_tables_yield_nothing() {
        let g = graph();
        let jgs = generate_join_graphs(&g, &[TableId(0), TableId(3)], opts());
        assert!(jgs.is_empty());
        assert!(unjoinable(&g, TableId(0), TableId(3), opts()));
        assert!(!unjoinable(&g, TableId(0), TableId(1), opts()));
    }

    #[test]
    fn three_required_tables_connect_in_multiple_shapes() {
        let g = graph();
        let jgs = generate_join_graphs(&g, &[TableId(0), TableId(1), TableId(2)], opts());
        // Triangle graph: 3 spanning trees of the triangle, each with
        // single-edge paths → path/chain shapes (no cycle is accepted).
        assert_eq!(jgs.len(), 3);
        for jg in &jgs {
            assert_eq!(jg.hops(), 2);
            assert_eq!(jg.tables(&g).len(), 3);
        }
    }

    #[test]
    fn graphs_are_deduplicated() {
        let g = graph();
        let jgs = generate_join_graphs(&g, &[TableId(0), TableId(1), TableId(2)], opts());
        let mut canons: Vec<Vec<(u32, u32)>> = jgs.iter().map(|j| j.canon()).collect();
        canons.sort();
        canons.dedup();
        assert_eq!(canons.len(), jgs.len());
    }

    #[test]
    fn max_graphs_caps_output() {
        let g = graph();
        let capped = JoinGraphOptions {
            max_graphs: 1,
            ..opts()
        };
        let jgs = generate_join_graphs(&g, &[TableId(0), TableId(1)], capped);
        assert_eq!(jgs.len(), 1);
    }

    #[test]
    fn threshold_filters_weak_edges() {
        let g = graph();
        let strict = JoinGraphOptions {
            threshold: 0.92,
            ..opts()
        };
        // Only C1-C2 (0.95) survives; T0–T2 and T1–T2 (0.85/0.9) drop.
        let jgs = generate_join_graphs(&g, &[TableId(0), TableId(2)], strict);
        assert!(jgs.is_empty());
        let jgs = generate_join_graphs(&g, &[TableId(0), TableId(1)], strict);
        assert_eq!(jgs.len(), 1);
    }

    #[test]
    fn labelled_trees_counts_follow_cayley() {
        assert_eq!(labelled_trees(1).len(), 1);
        assert_eq!(labelled_trees(2).len(), 1);
        assert_eq!(labelled_trees(3).len(), 3);
        assert_eq!(labelled_trees(4).len(), 16);
        // Every tree on 4 nodes has exactly 3 edges.
        assert!(labelled_trees(4).iter().all(|t| t.len() == 3));
    }

    #[test]
    fn mean_score_averages_edges() {
        let jg = JoinGraph {
            edges: vec![
                JoinGraphEdge {
                    left: ColumnId(0),
                    right: ColumnId(1),
                    score: 1.0,
                },
                JoinGraphEdge {
                    left: ColumnId(1),
                    right: ColumnId(2),
                    score: 0.5,
                },
            ],
        };
        assert!((jg.mean_score() - 0.75).abs() < 1e-9);
    }
}
