//! LSH banding over MinHash signatures for sub-quadratic candidate
//! generation.
//!
//! The hypergraph builder must avoid comparing all `O(|columns|²)` signature
//! pairs (Open Data has millions of columns). Signatures are split into `b`
//! bands of `r` rows (`b · r = k`); two columns land in the same bucket of a
//! band iff that band's slice hashes identically, and any shared bucket
//! makes them a *candidate pair*. The probability a pair with similarity `s`
//! becomes a candidate is `1 − (1 − s^r)^b` — the classic S-curve.

use crate::minhash::MinHashSignature;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::{fx_hash_u64, FxHashMap, FxHashSet};
use ver_common::ids::ColumnId;

/// Banded LSH index over column signatures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    /// One bucket map per band: band-hash → column ids.
    buckets: Vec<FxHashMap<u64, Vec<ColumnId>>>,
}

impl LshIndex {
    /// Create an index with `bands` bands of `rows` rows.
    ///
    /// `bands * rows` must equal the signature length used at insert time.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        LshIndex {
            bands,
            rows,
            buckets: (0..bands).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Pick a banding for signature length `k` targeting a similarity
    /// threshold `t` (the band/row split whose S-curve threshold
    /// `(1/b)^(1/r)` lands closest to `t`).
    pub fn for_threshold(k: usize, t: f64) -> Self {
        let mut best = (1usize, k.max(1));
        let mut best_err = f64::INFINITY;
        for rows in 1..=k.max(1) {
            if !k.is_multiple_of(rows) {
                continue;
            }
            let bands = k / rows;
            let threshold = (1.0 / bands as f64).powf(1.0 / rows as f64);
            let err = (threshold - t).abs();
            if err < best_err {
                best_err = err;
                best = (bands, rows);
            }
        }
        LshIndex::new(best.0, best.1)
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows per band.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn band_hash(&self, sig: &MinHashSignature, band: usize) -> u64 {
        let start = band * self.rows;
        fx_hash_u64(&sig.sig[start..start + self.rows])
    }

    /// Insert a column's signature. Empty signatures are skipped (empty
    /// columns join nothing).
    pub fn insert(&mut self, id: ColumnId, sig: &MinHashSignature) {
        if sig.is_empty() {
            return;
        }
        assert_eq!(
            sig.sig.len(),
            self.bands * self.rows,
            "signature length does not match banding"
        );
        for band in 0..self.bands {
            let h = self.band_hash(sig, band);
            self.buckets[band].entry(h).or_default().push(id);
        }
    }

    /// All candidate columns sharing at least one band bucket with `sig`
    /// (excluding `exclude`, typically the query column itself).
    pub fn candidates(&self, sig: &MinHashSignature, exclude: Option<ColumnId>) -> Vec<ColumnId> {
        if sig.is_empty() {
            return Vec::new();
        }
        let mut out: FxHashSet<ColumnId> = FxHashSet::default();
        for band in 0..self.bands {
            let h = self.band_hash(sig, band);
            if let Some(ids) = self.buckets[band].get(&h) {
                out.extend(ids.iter().copied());
            }
        }
        if let Some(ex) = exclude {
            out.remove(&ex);
        }
        let mut v: Vec<ColumnId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Iterate every bucket with ≥ 2 members — the candidate-pair source for
    /// offline hypergraph construction.
    pub fn collision_groups(&self) -> impl Iterator<Item = &[ColumnId]> + '_ {
        self.buckets
            .iter()
            .flat_map(|b| b.values())
            .filter(|v| v.len() >= 2)
            .map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;
    use ver_common::value::Value;
    use ver_store::column::Column;

    fn col(range: std::ops::Range<i64>) -> Column {
        range.map(Value::Int).collect()
    }

    #[test]
    fn near_duplicates_collide_disjoint_do_not() {
        let h = MinHasher::new(128, 11);
        let mut idx = LshIndex::for_threshold(128, 0.8);
        let a = h.signature_of_column(&col(0..1000));
        let b = h.signature_of_column(&col(0..990)); // ~0.99 similar
        let c = h.signature_of_column(&col(50_000..51_000)); // disjoint
        idx.insert(ColumnId(0), &a);
        idx.insert(ColumnId(1), &b);
        idx.insert(ColumnId(2), &c);
        let cands = idx.candidates(&a, Some(ColumnId(0)));
        assert!(
            cands.contains(&ColumnId(1)),
            "near-duplicate must be candidate"
        );
        assert!(
            !cands.contains(&ColumnId(2)),
            "disjoint column must not be candidate"
        );
    }

    #[test]
    fn for_threshold_respects_k() {
        let idx = LshIndex::for_threshold(128, 0.8);
        assert_eq!(idx.bands() * idx.rows(), 128);
        // Threshold of the chosen banding is near the target.
        let t = (1.0 / idx.bands() as f64).powf(1.0 / idx.rows() as f64);
        assert!((t - 0.8).abs() < 0.2, "banding threshold {t}");
    }

    #[test]
    fn empty_signatures_are_ignored() {
        let h = MinHasher::new(16, 1);
        let mut idx = LshIndex::new(4, 4);
        let e = h.signature_of_column(&Column::new());
        idx.insert(ColumnId(0), &e);
        assert!(idx.candidates(&e, None).is_empty());
        assert_eq!(idx.collision_groups().count(), 0);
    }

    #[test]
    fn collision_groups_surface_pairs() {
        let h = MinHasher::new(32, 5);
        let mut idx = LshIndex::new(8, 4);
        let a = h.signature_of_column(&col(0..100));
        idx.insert(ColumnId(0), &a);
        idx.insert(ColumnId(1), &a);
        let groups: Vec<&[ColumnId]> = idx.collision_groups().collect();
        assert!(!groups.is_empty());
        assert!(groups.iter().all(|g| g.len() == 2));
    }

    #[test]
    #[should_panic(expected = "signature length")]
    fn mismatched_signature_length_panics() {
        let h = MinHasher::new(16, 5);
        let mut idx = LshIndex::new(4, 8); // expects 32
        let a = h.signature_of_column(&col(0..10));
        idx.insert(ColumnId(0), &a);
    }

    #[test]
    fn candidates_are_sorted_and_deduped() {
        let h = MinHasher::new(32, 5);
        let mut idx = LshIndex::new(8, 4);
        let a = h.signature_of_column(&col(0..100));
        idx.insert(ColumnId(5), &a);
        idx.insert(ColumnId(3), &a);
        let cands = idx.candidates(&a, None);
        assert_eq!(cands, vec![ColumnId(3), ColumnId(5)]);
    }
}
