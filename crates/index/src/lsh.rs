//! LSH banding over MinHash signatures for sub-quadratic candidate
//! generation.
//!
//! The hypergraph builder must avoid comparing all `O(|columns|²)` signature
//! pairs (Open Data has millions of columns). Signatures are split into `b`
//! bands of `r` rows (`b · r = k`); two columns land in the same bucket of a
//! band iff that band's slice hashes identically, and any shared bucket
//! makes them a *candidate pair*. The probability a pair with similarity `s`
//! becomes a candidate is `1 − (1 − s^r)^b` — the classic S-curve.

//!
//! Band hashing is vectorized: a signature's `b` band hashes are computed
//! in one batched kernel, eight bands per step ([`ver_common::simd`]), each
//! lane replaying the exact Fx word-fold the scalar `fx_hash_u64` performs —
//! so batched and per-band hashing are bit-identical, and bucket layouts
//! never depend on the backend. The offline builder inserts whole signature
//! sets at once via [`LshIndex::insert_signatures`], which fans the
//! band-hash kernel out over the thread pool and fills buckets in
//! `ColumnId` order for any worker count.

use crate::minhash::MinHashSignature;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::{fx_hash_u64, fx_step, FxHashMap, FxHashSet};
use ver_common::ids::ColumnId;
use ver_common::pool::ThreadPool;
use ver_common::simd::{self, fx_step_x8, U64x8, LANES};
use ver_common::simd_multiversion;

/// Banded LSH index over column signatures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    /// One bucket map per band: band-hash → column ids.
    buckets: Vec<FxHashMap<u64, Vec<ColumnId>>>,
}

impl LshIndex {
    /// Create an index with `bands` bands of `rows` rows.
    ///
    /// `bands * rows` must equal the signature length used at insert time.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        LshIndex {
            bands,
            rows,
            buckets: (0..bands).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Pick a banding for signature length `k` targeting a similarity
    /// threshold `t` (the band/row split whose S-curve threshold
    /// `(1/b)^(1/r)` lands closest to `t`).
    pub fn for_threshold(k: usize, t: f64) -> Self {
        let mut best = (1usize, k.max(1));
        let mut best_err = f64::INFINITY;
        for rows in 1..=k.max(1) {
            if !k.is_multiple_of(rows) {
                continue;
            }
            let bands = k / rows;
            let threshold = (1.0 / bands as f64).powf(1.0 / rows as f64);
            let err = (threshold - t).abs();
            if err < best_err {
                best_err = err;
                best = (bands, rows);
            }
        }
        LshIndex::new(best.0, best.1)
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows per band.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Scalar reference band hash: the Fx hash of one band's row slice.
    /// [`LshIndex::band_hashes`] must reproduce this per band exactly.
    fn band_hash_scalar(&self, sig: &MinHashSignature, band: usize) -> u64 {
        let start = band * self.rows;
        fx_hash_u64(&sig.sig[start..start + self.rows])
    }

    /// All band hashes of one signature in band order, computed by the
    /// batched kernel (scalar reference under `VER_SIMD=0`). The returned
    /// vector has exactly [`LshIndex::bands`] entries.
    pub fn band_hashes(&self, sig: &MinHashSignature) -> Vec<u64> {
        let mut out = Vec::new();
        self.band_hashes_into(sig, &mut out);
        out
    }

    /// [`LshIndex::band_hashes`] into a reused buffer — the allocation-free
    /// entry point for loops that hash many signatures (`out` is cleared
    /// and refilled with [`LshIndex::bands`] entries).
    pub fn band_hashes_into(&self, sig: &MinHashSignature, out: &mut Vec<u64>) {
        assert_eq!(
            sig.sig.len(),
            self.bands * self.rows,
            "signature length does not match banding"
        );
        out.clear();
        out.resize(self.bands, 0);
        if simd::simd_enabled() && self.bands >= LANES {
            band_hashes_blocked(&sig.sig, self.rows, out);
        } else {
            for (band, slot) in out.iter_mut().enumerate() {
                *slot = self.band_hash_scalar(sig, band);
            }
        }
    }

    /// Bucket `id` under precomputed band hashes (the write half of
    /// [`LshIndex::insert`], split out so batch insertion can hash on the
    /// pool and fill buckets deterministically afterwards).
    fn bucket_hashed(&mut self, id: ColumnId, band_hashes: &[u64]) {
        for (band, &h) in band_hashes.iter().enumerate() {
            self.buckets[band].entry(h).or_default().push(id);
        }
    }

    /// Insert a column's signature. Empty signatures are skipped (empty
    /// columns join nothing).
    pub fn insert(&mut self, id: ColumnId, sig: &MinHashSignature) {
        if sig.is_empty() {
            return;
        }
        let hashes = self.band_hashes(sig);
        self.bucket_hashed(id, &hashes);
    }

    /// Insert a whole signature set at once: `sigs[i]` is bucketed as
    /// `ColumnId(i)`. Band hashing — the arithmetic half — fans out over
    /// `pool`; bucket filling then runs in `ColumnId` order, so the bucket
    /// lists are identical to sequential [`LshIndex::insert`] calls for any
    /// worker count. This is the offline builder's insertion path.
    pub fn insert_signatures(&mut self, sigs: &[MinHashSignature], pool: &ThreadPool) {
        let hashed: Vec<Option<Vec<u64>>> = pool.par_map(sigs, |sig| {
            if sig.is_empty() {
                None
            } else {
                Some(self.band_hashes(sig))
            }
        });
        for (i, hashes) in hashed.iter().enumerate() {
            if let Some(hashes) = hashes {
                self.bucket_hashed(ColumnId(i as u32), hashes);
            }
        }
    }

    /// All candidate columns sharing at least one band bucket with `sig`
    /// (excluding `exclude`, typically the query column itself).
    pub fn candidates(&self, sig: &MinHashSignature, exclude: Option<ColumnId>) -> Vec<ColumnId> {
        if sig.is_empty() {
            return Vec::new();
        }
        let mut out: FxHashSet<ColumnId> = FxHashSet::default();
        for (band, &h) in self.band_hashes(sig).iter().enumerate() {
            if let Some(ids) = self.buckets[band].get(&h) {
                out.extend(ids.iter().copied());
            }
        }
        if let Some(ex) = exclude {
            out.remove(&ex);
        }
        let mut v: Vec<ColumnId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Iterate every bucket with ≥ 2 members — the candidate-pair source
    /// for offline hypergraph construction.
    pub fn collision_groups(&self) -> impl Iterator<Item = &[ColumnId]> + '_ {
        self.buckets
            .iter()
            .flat_map(|b| b.values())
            .filter(|v| v.len() >= 2)
            .map(|v| v.as_slice())
    }
}

simd_multiversion! {
    /// Batched band hashing: eight bands per step, each lane replaying the
    /// exact word-fold `fx_hash_u64` applies to a band's row slice — the
    /// length prefix, then each row (as little-endian words via `to_le`,
    /// matching the byte-wise `Hasher::write` the std slice `Hash` impl
    /// feeds). Bands are independent, so lane-parallel evaluation is
    /// bit-identical to hashing band by band; the remainder
    /// (`bands % LANES`) falls back to the scalar hash. `out.len()` must be
    /// `sig.len() / rows`.
    fn band_hashes_blocked(sig: &[u64], rows: usize, out: &mut [u64]) {
        let bands = out.len();
        let full = bands - bands % LANES;
        // Length prefix: std's slice Hash writes the element count first
        // (`write_usize(rows)`), identically for every band.
        let prefix = fx_step_x8(U64x8::splat(0), U64x8::splat(rows as u64));
        for block in (0..full).step_by(LANES) {
            let mut h = prefix;
            if rows == 1 {
                // Single-row bands (the builder's containment-friendly
                // banding): lanes load contiguously.
                h = fx_step_x8(h, U64x8::load(&sig[block..]).to_le());
            } else {
                for j in 0..rows {
                    let mut words = [0u64; LANES];
                    for (lane, w) in words.iter_mut().enumerate() {
                        *w = sig[(block + lane) * rows + j];
                    }
                    h = fx_step_x8(h, U64x8(words).to_le());
                }
            }
            h.store(&mut out[block..]);
        }
        for band in full..bands {
            let mut h = fx_step(0, rows as u64);
            for j in 0..rows {
                h = fx_step(h, sig[band * rows + j].to_le());
            }
            out[band] = h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;
    use ver_common::value::Value;
    use ver_store::column::Column;

    fn col(range: std::ops::Range<i64>) -> Column {
        range.map(Value::Int).collect()
    }

    #[test]
    fn near_duplicates_collide_disjoint_do_not() {
        let h = MinHasher::new(128, 11);
        let mut idx = LshIndex::for_threshold(128, 0.8);
        let a = h.signature_of_column(&col(0..1000));
        let b = h.signature_of_column(&col(0..990)); // ~0.99 similar
        let c = h.signature_of_column(&col(50_000..51_000)); // disjoint
        idx.insert(ColumnId(0), &a);
        idx.insert(ColumnId(1), &b);
        idx.insert(ColumnId(2), &c);
        let cands = idx.candidates(&a, Some(ColumnId(0)));
        assert!(
            cands.contains(&ColumnId(1)),
            "near-duplicate must be candidate"
        );
        assert!(
            !cands.contains(&ColumnId(2)),
            "disjoint column must not be candidate"
        );
    }

    #[test]
    fn for_threshold_respects_k() {
        let idx = LshIndex::for_threshold(128, 0.8);
        assert_eq!(idx.bands() * idx.rows(), 128);
        // Threshold of the chosen banding is near the target.
        let t = (1.0 / idx.bands() as f64).powf(1.0 / idx.rows() as f64);
        assert!((t - 0.8).abs() < 0.2, "banding threshold {t}");
    }

    #[test]
    fn empty_signatures_are_ignored() {
        let h = MinHasher::new(16, 1);
        let mut idx = LshIndex::new(4, 4);
        let e = h.signature_of_column(&Column::new());
        idx.insert(ColumnId(0), &e);
        assert!(idx.candidates(&e, None).is_empty());
        assert_eq!(idx.collision_groups().count(), 0);
    }

    #[test]
    fn collision_groups_surface_pairs() {
        let h = MinHasher::new(32, 5);
        let mut idx = LshIndex::new(8, 4);
        let a = h.signature_of_column(&col(0..100));
        idx.insert(ColumnId(0), &a);
        idx.insert(ColumnId(1), &a);
        let groups: Vec<&[ColumnId]> = idx.collision_groups().collect();
        assert!(!groups.is_empty());
        assert!(groups.iter().all(|g| g.len() == 2));
    }

    #[test]
    #[should_panic(expected = "signature length")]
    fn mismatched_signature_length_panics() {
        let h = MinHasher::new(16, 5);
        let mut idx = LshIndex::new(4, 8); // expects 32
        let a = h.signature_of_column(&col(0..10));
        idx.insert(ColumnId(0), &a);
    }

    #[test]
    fn batched_band_hashes_match_scalar_reference() {
        // Bandings with and without lane-width remainders, rows > 1, and a
        // bands < LANES case that exercises the scalar dispatch.
        for (bands, rows) in [(128, 1), (32, 4), (12, 2), (9, 3), (4, 4), (1, 16)] {
            let h = MinHasher::new(bands * rows, 77);
            let idx = LshIndex::new(bands, rows);
            let sig = h.signature_of_column(&col(0..500));
            let batched = idx.band_hashes(&sig);
            assert_eq!(batched.len(), bands);
            for (band, &bh) in batched.iter().enumerate() {
                assert_eq!(
                    bh,
                    idx.band_hash_scalar(&sig, band),
                    "bands={bands} rows={rows} band={band}"
                );
            }
        }
    }

    #[test]
    fn insert_signatures_matches_sequential_inserts() {
        let h = MinHasher::new(32, 5);
        let sigs: Vec<MinHashSignature> = (0..20)
            .map(|i| {
                if i % 7 == 3 {
                    h.signature_of_column(&Column::new()) // empty: skipped
                } else {
                    h.signature_of_column(&col(i * 40..i * 40 + 120))
                }
            })
            .collect();
        let mut seq = LshIndex::new(8, 4);
        for (i, sig) in sigs.iter().enumerate() {
            seq.insert(ColumnId(i as u32), sig);
        }
        for threads in [1, 4] {
            let mut batch = LshIndex::new(8, 4);
            batch.insert_signatures(&sigs, &ver_common::pool::ThreadPool::new(threads));
            assert_eq!(batch.buckets, seq.buckets, "threads={threads}");
        }
    }

    #[test]
    fn candidates_are_sorted_and_deduped() {
        let h = MinHasher::new(32, 5);
        let mut idx = LshIndex::new(8, 4);
        let a = h.signature_of_column(&col(0..100));
        idx.insert(ColumnId(5), &a);
        idx.insert(ColumnId(3), &a);
        let cands = idx.candidates(&a, None);
        assert_eq!(cands, vec![ColumnId(3), ColumnId(5)]);
    }
}
