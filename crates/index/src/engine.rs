//! The online Discovery Engine API.
//!
//! [`DiscoveryIndex`] bundles everything the offline pass built and exposes
//! the three functions the paper's Appendix A specifies (SEARCH-KEYWORD,
//! NEIGHBORS, GENERATE-JOIN-GRAPHS) plus the lookups downstream components
//! need (profiles, column↔table resolution, Table-I statistics).

use crate::builder::IndexConfig;
use crate::hypergraph::JoinHypergraph;
use crate::joinpath::{generate_join_graphs, unjoinable, JoinGraph, JoinGraphOptions};
use crate::minhash::{MinHashSignature, MinHasher};
use crate::valueindex::{Fuzziness, KeywordIndex, SearchTarget};
use ver_common::ids::{ColumnId, TableId};
use ver_store::profile::ColumnProfile;

/// The assembled discovery index (Aurum substitute).
#[derive(Debug, Clone)]
pub struct DiscoveryIndex {
    config: IndexConfig,
    profiles: Vec<ColumnProfile>,
    hasher: MinHasher,
    signatures: Vec<MinHashSignature>,
    keyword: KeywordIndex,
    hypergraph: JoinHypergraph,
}

impl DiscoveryIndex {
    /// Assemble from parts (used by the builder).
    pub(crate) fn assemble(
        config: IndexConfig,
        profiles: Vec<ColumnProfile>,
        hasher: MinHasher,
        signatures: Vec<MinHashSignature>,
        keyword: KeywordIndex,
        hypergraph: JoinHypergraph,
    ) -> Self {
        DiscoveryIndex {
            config,
            profiles,
            hasher,
            signatures,
            keyword,
            hypergraph,
        }
    }

    /// Build configuration used.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Profile of a column.
    pub fn profile(&self, c: ColumnId) -> &ColumnProfile {
        &self.profiles[c.idx()]
    }

    /// All profiles (ColumnId order).
    pub fn profiles(&self) -> &[ColumnProfile] {
        &self.profiles
    }

    /// MinHash signature of a column.
    pub fn signature(&self, c: ColumnId) -> &MinHashSignature {
        &self.signatures[c.idx()]
    }

    /// The MinHash family (for sketching query-side value sets).
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// The join hypergraph.
    pub fn hypergraph(&self) -> &JoinHypergraph {
        &self.hypergraph
    }

    /// The keyword index (exposed for inspection and determinism tests).
    pub fn keyword_index(&self) -> &KeywordIndex {
        &self.keyword
    }

    /// `true` when two indexes hold identical contents — profiles (with
    /// their stored distinct-hash vectors), MinHash family and signatures,
    /// keyword postings, and the full hypergraph adjacency. This is the
    /// determinism contract of the parallel builder: `threads: 1` and
    /// `threads: N` must produce indexes for which this holds. The build
    /// config itself (which records the thread count) is deliberately not
    /// compared.
    pub fn same_contents(&self, other: &DiscoveryIndex) -> bool {
        self.profiles == other.profiles
            && self.hasher == other.hasher
            && self.signatures == other.signatures
            && self.keyword == other.keyword
            && self.hypergraph == other.hypergraph
    }

    /// Owning table of a column.
    pub fn table_of(&self, c: ColumnId) -> TableId {
        self.hypergraph.table_of(c)
    }

    /// SEARCH-KEYWORD (Appendix A).
    pub fn search_keyword(
        &self,
        keyword: &str,
        target: SearchTarget,
        fuzzy: Fuzziness,
    ) -> Vec<ColumnId> {
        self.keyword.search_keyword(keyword, target, fuzzy)
    }

    /// NEIGHBORS (Appendix A): joinable columns at containment ≥ threshold.
    pub fn neighbors(&self, c: ColumnId, threshold: f64) -> Vec<(ColumnId, f32)> {
        self.hypergraph.neighbors(c, threshold)
    }

    /// GENERATE-JOIN-GRAPHS (Appendix A): join graphs connecting `tables`
    /// with per-connection hop limit `rho`.
    pub fn generate_join_graphs(&self, tables: &[TableId], rho: usize) -> Vec<JoinGraph> {
        generate_join_graphs(&self.hypergraph, tables, self.join_graph_options(rho))
    }

    /// True when two tables provably cannot be connected under `rho` hops —
    /// feeds Algorithm 5's non-joinable cache.
    pub fn unjoinable(&self, a: TableId, b: TableId, rho: usize) -> bool {
        unjoinable(&self.hypergraph, a, b, self.join_graph_options(rho))
    }

    fn join_graph_options(&self, rho: usize) -> JoinGraphOptions {
        JoinGraphOptions {
            max_hops: rho,
            threshold: self.config.containment_threshold,
            max_graphs: 10_000,
        }
    }

    /// Number of undirected joinable column pairs (Table I).
    pub fn joinable_pairs(&self) -> usize {
        self.hypergraph.joinable_pairs()
    }

    /// Number of distinct indexed values (index-size reporting).
    pub fn distinct_indexed_values(&self) -> usize {
        self.keyword.distinct_values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_index;
    use ver_common::value::Value;
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    fn setup() -> DiscoveryIndex {
        let mut cat = TableCatalog::new();
        let keys: Vec<String> = (0..80).map(|i| format!("k{i}")).collect();
        let mut b = TableBuilder::new("left", &["key", "a"]);
        for (i, k) in keys.iter().enumerate() {
            b.push_row(vec![Value::text(k.clone()), Value::Int(i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("right", &["key", "b"]);
        for (i, k) in keys.iter().enumerate() {
            b.push_row(vec![Value::text(k.clone()), Value::Int(-(i as i64))])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn api_surface_works_end_to_end() {
        let idx = setup();
        // keyword → column
        let hits = idx.search_keyword("k5", SearchTarget::Values, Fuzziness::Exact);
        assert_eq!(hits.len(), 2);
        // neighbors
        let n = idx.neighbors(ColumnId(0), 0.8);
        assert_eq!(n.len(), 1);
        assert_eq!(idx.table_of(n[0].0), TableId(1));
        // join graphs
        let jgs = idx.generate_join_graphs(&[TableId(0), TableId(1)], 2);
        assert_eq!(jgs.len(), 1);
        assert_eq!(jgs[0].hops(), 1);
        assert!(!idx.unjoinable(TableId(0), TableId(1), 2));
        // stats
        assert_eq!(idx.joinable_pairs(), 1);
        assert!(idx.distinct_indexed_values() >= 80);
    }

    #[test]
    fn profiles_align_with_columns() {
        let idx = setup();
        assert_eq!(idx.profiles().len(), 4);
        assert_eq!(idx.profile(ColumnId(0)).distinct, 80);
        assert_eq!(idx.signature(ColumnId(0)).cardinality, 80);
    }
}
