//! Keyword retrieval indexes: values, attribute names and table names.
//!
//! Implements the Aurum API function the paper's Appendix A specifies:
//!
//! ```text
//! SEARCH-KEYWORD(target, fuzzy) — given an input string, return columns
//! that contain the string in either the attribute name or the values, as
//! specified by target; exact or fuzzy matching (maximum Levenshtein
//! distance).
//! ```
//!
//! Values are indexed by their normalized form (lower-cased, trimmed,
//! numeric forms unified) so the noisy-query setting tolerates case and
//! formatting mismatches out of the box.

use serde::{Deserialize, Serialize};
use ver_common::fxhash::{FxHashMap, FxHashSet};
use ver_common::ids::{ColumnId, TableId};
use ver_common::text::FuzzyMatcher;

/// What a keyword should be matched against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchTarget {
    /// Match against cell values.
    Values,
    /// Match against attribute (column header) names.
    Attributes,
    /// Match against table names.
    TableNames,
    /// Match against everything.
    All,
}

/// Exact or fuzzy matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fuzziness {
    /// Exact match on the normalized form.
    Exact,
    /// Accept matches within this Levenshtein distance.
    MaxEdits(usize),
}

/// Inverted indexes for keyword search.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KeywordIndex {
    /// normalized value → columns containing it.
    values: FxHashMap<String, Vec<ColumnId>>,
    /// normalized attribute name → columns bearing it.
    attributes: FxHashMap<String, Vec<ColumnId>>,
    /// normalized table name → table id.
    table_names: FxHashMap<String, TableId>,
    /// columns of each table (for TableNames target resolution).
    table_columns: FxHashMap<TableId, Vec<ColumnId>>,
}

fn normalize(s: &str) -> String {
    s.trim().to_lowercase()
}

/// One query's match state, built once per lookup: the normalised needle
/// plus (for fuzzy mode) a reusable [`FuzzyMatcher`]. Probing a posting key
/// allocates nothing.
struct KeywordMatcher {
    needle: String,
    fuzzy: Option<FuzzyMatcher>,
}

impl KeywordMatcher {
    fn new(keyword: &str, fuzzy: Fuzziness) -> Self {
        let needle = normalize(keyword);
        let fuzzy = match fuzzy {
            Fuzziness::Exact => None,
            Fuzziness::MaxEdits(d) => Some(FuzzyMatcher::new(&needle, d)),
        };
        KeywordMatcher { needle, fuzzy }
    }

    fn needle(&self) -> &str {
        &self.needle
    }

    fn matches(&mut self, key: &str) -> bool {
        match &mut self.fuzzy {
            None => key == self.needle,
            Some(m) => m.matches(key),
        }
    }
}

impl KeywordIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a cell value occurrence.
    pub fn add_value(&mut self, normalized_value: &str, column: ColumnId) {
        if normalized_value.is_empty() {
            return;
        }
        self.add_value_owned(normalized_value.to_string(), column);
    }

    /// Register a cell value occurrence from an already-owned normalized
    /// string — the allocation-free entry point for bulk construction (the
    /// builder hands over each `Value::normalized()` string directly, so no
    /// copy is made even on first sight).
    ///
    /// Postings are compacted against the list tail: while one column's
    /// values are scanned consecutively, a value already registered by that
    /// column is a no-op.
    pub fn add_value_owned(&mut self, normalized_value: String, column: ColumnId) {
        if normalized_value.is_empty() {
            return;
        }
        let entry = self.values.entry(normalized_value).or_default();
        if entry.last() != Some(&column) {
            entry.push(column);
        }
    }

    /// Register an attribute (column header) name.
    pub fn add_attribute(&mut self, name: &str, column: ColumnId) {
        let n = normalize(name);
        if n.is_empty() {
            return;
        }
        let entry = self.attributes.entry(n).or_default();
        if !entry.contains(&column) {
            entry.push(column);
        }
    }

    /// Register a table name and its columns.
    pub fn add_table(&mut self, name: &str, table: TableId, columns: Vec<ColumnId>) {
        self.table_names.insert(normalize(name), table);
        self.table_columns.insert(table, columns);
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.values.len()
    }

    /// Absorb another index built over a **disjoint set of tables** (the
    /// parallel builder constructs one partial index per table and merges
    /// them in table order).
    ///
    /// Posting lists concatenate in merge order; because no column appears
    /// in two partials, the result is exactly what sequential insertion in
    /// the same table order would have produced.
    pub fn merge(&mut self, other: KeywordIndex) {
        for (value, cols) in other.values {
            self.values.entry(value).or_default().extend(cols);
        }
        for (name, cols) in other.attributes {
            self.attributes.entry(name).or_default().extend(cols);
        }
        self.table_names.extend(other.table_names);
        self.table_columns.extend(other.table_columns);
    }

    /// Split into `count` partitions by table ownership: partition
    /// `owner(table)` receives the table's name/column registration and
    /// every posting of the table's columns. Posting sublists keep their
    /// original relative order, so a later [`KeywordIndex::merge`] +
    /// [`KeywordIndex::sort_postings`] reconstructs a builder-produced
    /// index exactly (the builder emits strictly increasing posting lists —
    /// tables in id order, columns in ordinal order).
    pub(crate) fn partition(
        &self,
        count: usize,
        owner: impl Fn(TableId) -> usize,
        table_of: impl Fn(ColumnId) -> TableId,
    ) -> Vec<KeywordIndex> {
        assert!(count >= 1, "at least one partition");
        let mut parts = vec![KeywordIndex::new(); count];
        let split = |postings: &FxHashMap<String, Vec<ColumnId>>,
                     select: fn(&mut KeywordIndex) -> &mut FxHashMap<String, Vec<ColumnId>>,
                     parts: &mut Vec<KeywordIndex>| {
            for (key, cols) in postings {
                for &c in cols {
                    let entry = select(&mut parts[owner(table_of(c))])
                        .entry(key.clone())
                        .or_default();
                    entry.push(c);
                }
            }
        };
        split(&self.values, |p| &mut p.values, &mut parts);
        split(&self.attributes, |p| &mut p.attributes, &mut parts);
        for (name, &table) in &self.table_names {
            parts[owner(table)].table_names.insert(name.clone(), table);
        }
        for (&table, cols) in &self.table_columns {
            parts[owner(table)]
                .table_columns
                .insert(table, cols.clone());
        }
        parts
    }

    /// Sort every value/attribute posting list ascending — the canonical
    /// order builder-produced indexes already have. Called after merging
    /// shard partitions (whose lists concatenate in shard order) to restore
    /// the original, bit-identical posting order.
    pub(crate) fn sort_postings(&mut self) {
        for cols in self.values.values_mut() {
            cols.sort_unstable();
        }
        for cols in self.attributes.values_mut() {
            cols.sort_unstable();
        }
    }

    /// Decompose into persistable parts, each sorted by key so the binary
    /// encoding in [`crate::persist`] is canonical (two equal indexes
    /// serialise to identical bytes). Posting lists keep their insertion
    /// order — it is part of the index's determinism contract.
    #[allow(clippy::type_complexity)]
    pub(crate) fn persist_parts(
        &self,
    ) -> (
        Vec<(&String, &Vec<ColumnId>)>,
        Vec<(&String, &Vec<ColumnId>)>,
        Vec<(&String, TableId)>,
        Vec<(TableId, &Vec<ColumnId>)>,
    ) {
        let mut values: Vec<_> = self.values.iter().collect();
        values.sort_unstable_by_key(|(k, _)| *k);
        let mut attributes: Vec<_> = self.attributes.iter().collect();
        attributes.sort_unstable_by_key(|(k, _)| *k);
        let mut table_names: Vec<_> = self.table_names.iter().map(|(k, &t)| (k, t)).collect();
        table_names.sort_unstable_by_key(|(k, _)| *k);
        let mut table_columns: Vec<_> = self.table_columns.iter().map(|(&t, c)| (t, c)).collect();
        table_columns.sort_unstable_by_key(|(t, _)| *t);
        (values, attributes, table_names, table_columns)
    }

    /// Rebuild from parts produced by [`KeywordIndex::persist_parts`]
    /// (deserialisation path; posting-list order is preserved verbatim).
    pub(crate) fn from_persist_parts(
        values: Vec<(String, Vec<ColumnId>)>,
        attributes: Vec<(String, Vec<ColumnId>)>,
        table_names: Vec<(String, TableId)>,
        table_columns: Vec<(TableId, Vec<ColumnId>)>,
    ) -> Self {
        KeywordIndex {
            values: values.into_iter().collect(),
            attributes: attributes.into_iter().collect(),
            table_names: table_names.into_iter().collect(),
            table_columns: table_columns.into_iter().collect(),
        }
    }

    /// SEARCH-KEYWORD: columns matching `keyword` under `target`/`fuzzy`.
    /// Results are sorted and deduplicated for determinism.
    ///
    /// The query is normalised once up front; fuzzy probes share one
    /// `KeywordMatcher` (pre-decoded needle, reused DP row), so the per-key
    /// lookup loop over the posting maps allocates nothing.
    pub fn search_keyword(
        &self,
        keyword: &str,
        target: SearchTarget,
        fuzzy: Fuzziness,
    ) -> Vec<ColumnId> {
        let mut matcher = KeywordMatcher::new(keyword, fuzzy);
        let mut out: FxHashSet<ColumnId> = FxHashSet::default();

        if matches!(target, SearchTarget::Values | SearchTarget::All) {
            match fuzzy {
                Fuzziness::Exact => {
                    if let Some(cols) = self.values.get(matcher.needle()) {
                        out.extend(cols.iter().copied());
                    }
                }
                Fuzziness::MaxEdits(_) => {
                    for (key, cols) in &self.values {
                        if matcher.matches(key) {
                            out.extend(cols.iter().copied());
                        }
                    }
                }
            }
        }
        if matches!(target, SearchTarget::Attributes | SearchTarget::All) {
            for (key, cols) in &self.attributes {
                if matcher.matches(key) {
                    out.extend(cols.iter().copied());
                }
            }
        }
        if matches!(target, SearchTarget::TableNames | SearchTarget::All) {
            for (key, table) in &self.table_names {
                if matcher.matches(key) {
                    if let Some(cols) = self.table_columns.get(table) {
                        out.extend(cols.iter().copied());
                    }
                }
            }
        }

        let mut v: Vec<ColumnId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Tables whose name matches `keyword`.
    pub fn search_table(&self, keyword: &str, fuzzy: Fuzziness) -> Vec<TableId> {
        let mut matcher = KeywordMatcher::new(keyword, fuzzy);
        let mut out: Vec<TableId> = self
            .table_names
            .iter()
            .filter(|(key, _)| matcher.matches(key))
            .map(|(_, &t)| t)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> KeywordIndex {
        let mut idx = KeywordIndex::new();
        idx.add_value("indiana", ColumnId(0));
        idx.add_value("indiana", ColumnId(2));
        idx.add_value("georgia", ColumnId(0));
        idx.add_value("6800000", ColumnId(1));
        idx.add_attribute("State", ColumnId(0));
        idx.add_attribute("state_name", ColumnId(2));
        idx.add_table("airports", TableId(0), vec![ColumnId(0), ColumnId(1)]);
        idx
    }

    #[test]
    fn exact_value_search() {
        let idx = index();
        assert_eq!(
            idx.search_keyword("Indiana", SearchTarget::Values, Fuzziness::Exact),
            vec![ColumnId(0), ColumnId(2)]
        );
        assert!(idx
            .search_keyword("idaho", SearchTarget::Values, Fuzziness::Exact)
            .is_empty());
    }

    #[test]
    fn fuzzy_value_search_tolerates_typos() {
        let idx = index();
        // "indianna" is 1 edit from "indiana".
        assert_eq!(
            idx.search_keyword("indianna", SearchTarget::Values, Fuzziness::MaxEdits(1)),
            vec![ColumnId(0), ColumnId(2)]
        );
        assert!(idx
            .search_keyword("indianna", SearchTarget::Values, Fuzziness::Exact)
            .is_empty());
    }

    #[test]
    fn attribute_search_exact_and_fuzzy() {
        let idx = index();
        assert_eq!(
            idx.search_keyword("state", SearchTarget::Attributes, Fuzziness::Exact),
            vec![ColumnId(0)]
        );
        // "state_name" is within 5 edits of "state".
        assert_eq!(
            idx.search_keyword("state", SearchTarget::Attributes, Fuzziness::MaxEdits(5)),
            vec![ColumnId(0), ColumnId(2)]
        );
    }

    #[test]
    fn table_name_target_returns_member_columns() {
        let idx = index();
        assert_eq!(
            idx.search_keyword("airports", SearchTarget::TableNames, Fuzziness::Exact),
            vec![ColumnId(0), ColumnId(1)]
        );
        assert_eq!(
            idx.search_table("airport", Fuzziness::MaxEdits(1)),
            vec![TableId(0)]
        );
    }

    #[test]
    fn all_target_unions_everything() {
        let mut idx = index();
        idx.add_value("state", ColumnId(9)); // a *value* equal to an attribute name
        let hits = idx.search_keyword("state", SearchTarget::All, Fuzziness::Exact);
        assert_eq!(hits, vec![ColumnId(0), ColumnId(9)]);
    }

    #[test]
    fn numbers_search_as_normalized_strings() {
        let idx = index();
        assert_eq!(
            idx.search_keyword("6800000", SearchTarget::Values, Fuzziness::Exact),
            vec![ColumnId(1)]
        );
    }

    #[test]
    fn empty_values_are_not_indexed() {
        let mut idx = KeywordIndex::new();
        idx.add_value("", ColumnId(0));
        idx.add_attribute("  ", ColumnId(0));
        assert_eq!(idx.distinct_values(), 0);
        assert!(idx
            .search_keyword("", SearchTarget::All, Fuzziness::Exact)
            .is_empty());
    }

    #[test]
    fn merging_partials_matches_sequential_insertion() {
        // Sequential: two tables inserted in order.
        let mut seq = KeywordIndex::new();
        seq.add_table("a", TableId(0), vec![ColumnId(0)]);
        seq.add_value("shared", ColumnId(0));
        seq.add_attribute("k", ColumnId(0));
        seq.add_table("b", TableId(1), vec![ColumnId(1)]);
        seq.add_value("shared", ColumnId(1));
        seq.add_attribute("k", ColumnId(1));

        // Parallel: one partial per table, merged in table order.
        let mut pa = KeywordIndex::new();
        pa.add_table("a", TableId(0), vec![ColumnId(0)]);
        pa.add_value_owned("shared".into(), ColumnId(0));
        pa.add_attribute("k", ColumnId(0));
        let mut pb = KeywordIndex::new();
        pb.add_table("b", TableId(1), vec![ColumnId(1)]);
        pb.add_value_owned("shared".into(), ColumnId(1));
        pb.add_attribute("k", ColumnId(1));
        let mut merged = KeywordIndex::new();
        merged.merge(pa);
        merged.merge(pb);

        assert_eq!(merged, seq);
        assert_eq!(
            merged.search_keyword("shared", SearchTarget::Values, Fuzziness::Exact),
            vec![ColumnId(0), ColumnId(1)]
        );
    }

    #[test]
    fn duplicate_value_postings_are_compacted() {
        let mut idx = KeywordIndex::new();
        idx.add_value("x", ColumnId(1));
        idx.add_value("x", ColumnId(1));
        assert_eq!(
            idx.search_keyword("x", SearchTarget::Values, Fuzziness::Exact),
            vec![ColumnId(1)]
        );
    }
}
