//! Binary persistence of the join hypergraph.
//!
//! The hypergraph is the expensive product of the offline pass (signature
//! computation + LSH + containment checks over millions of column pairs);
//! persisting it lets a deployment reuse the index across sessions — Aurum
//! likewise serialises its model. The format is a small hand-rolled binary
//! layout built on the `bytes` crate:
//!
//! ```text
//! magic  "VERIDX\x01"            8 bytes
//! ncols  u32 LE                  column count
//! tabs   u32 LE × ncols          col→table mapping
//! nedges u64 LE                  undirected edge count
//! edges  (u32, u32, f32) LE ×    a, b, score
//! ```

use crate::hypergraph::JoinHypergraph;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ver_common::error::{Result, VerError};
use ver_common::ids::{ColumnId, TableId};

const MAGIC: &[u8; 8] = b"VERIDX\x01\x00";

/// Serialise a hypergraph to bytes.
pub fn hypergraph_to_bytes(g: &JoinHypergraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + g.column_count() * 4 + g.joinable_pairs() * 12);
    buf.put_slice(MAGIC);
    buf.put_u32_le(g.column_count() as u32);
    for i in 0..g.column_count() {
        buf.put_u32_le(g.table_of(ColumnId(i as u32)).0);
    }
    buf.put_u64_le(g.joinable_pairs() as u64);
    for e in g.edges() {
        buf.put_u32_le(e.a.0);
        buf.put_u32_le(e.b.0);
        buf.put_f32_le(e.score);
    }
    buf.freeze()
}

/// Deserialise a hypergraph from bytes produced by [`hypergraph_to_bytes`].
pub fn hypergraph_from_bytes(mut data: &[u8]) -> Result<JoinHypergraph> {
    if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
        return Err(VerError::Serde("bad magic header".into()));
    }
    data.advance(MAGIC.len());
    let ncols = data.get_u32_le() as usize;
    if data.remaining() < ncols * 4 + 8 {
        return Err(VerError::Serde("truncated column table".into()));
    }
    let mut col_table = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        col_table.push(TableId(data.get_u32_le()));
    }
    let nedges = data.get_u64_le() as usize;
    if data.remaining() < nedges * 12 {
        return Err(VerError::Serde("truncated edge list".into()));
    }
    let mut g = JoinHypergraph::new(col_table);
    for _ in 0..nedges {
        let a = ColumnId(data.get_u32_le());
        let b = ColumnId(data.get_u32_le());
        let score = data.get_f32_le();
        if a.idx() >= ncols || b.idx() >= ncols || a == b {
            return Err(VerError::Serde(format!("invalid edge {a:?}-{b:?}")));
        }
        g.add_edge(a, b, score);
    }
    g.finalize();
    Ok(g)
}

/// Persist a hypergraph to a file.
pub fn save_hypergraph(g: &JoinHypergraph, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, hypergraph_to_bytes(g))?;
    Ok(())
}

/// Load a hypergraph from a file.
pub fn load_hypergraph(path: &std::path::Path) -> Result<JoinHypergraph> {
    let data = std::fs::read(path)?;
    hypergraph_from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> JoinHypergraph {
        let col_table = vec![TableId(0), TableId(0), TableId(1), TableId(2)];
        let mut g = JoinHypergraph::new(col_table);
        g.add_edge(ColumnId(0), ColumnId(2), 0.9);
        g.add_edge(ColumnId(1), ColumnId(3), 0.85);
        g.finalize();
        g
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = graph();
        let bytes = hypergraph_to_bytes(&g);
        let g2 = hypergraph_from_bytes(&bytes).unwrap();
        assert_eq!(g2.column_count(), g.column_count());
        assert_eq!(g2.joinable_pairs(), g.joinable_pairs());
        assert_eq!(
            g2.neighbors(ColumnId(0), 0.0),
            g.neighbors(ColumnId(0), 0.0)
        );
        assert_eq!(g2.table_of(ColumnId(3)), TableId(2));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = hypergraph_to_bytes(&graph()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            hypergraph_from_bytes(&bytes),
            Err(VerError::Serde(_))
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = hypergraph_to_bytes(&graph());
        for cut in [4usize, 12, bytes.len() - 3] {
            assert!(
                hypergraph_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_edge_ids_rejected() {
        let g = graph();
        let mut bytes = hypergraph_to_bytes(&g).to_vec();
        // First edge starts after magic(8) + ncols(4) + tabs(16) + nedges(8).
        let edge_off = 8 + 4 + 16 + 8;
        bytes[edge_off..edge_off + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(hypergraph_from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ver_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hypergraph.bin");
        let g = graph();
        save_hypergraph(&g, &path).unwrap();
        let g2 = load_hypergraph(&path).unwrap();
        assert_eq!(g2.joinable_pairs(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = JoinHypergraph::new(vec![]);
        let g2 = hypergraph_from_bytes(&hypergraph_to_bytes(&g)).unwrap();
        assert_eq!(g2.column_count(), 0);
        assert_eq!(g2.joinable_pairs(), 0);
    }
}
