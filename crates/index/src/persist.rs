//! Binary persistence of the offline pass's products.
//!
//! Three formats live here, all hand-rolled on the `bytes` crate (the serde
//! stand-in under `vendor/` is a no-op, so persistence cannot lean on
//! derives):
//!
//! * the **hypergraph format** (`VERIDX\x01`) — just the join hypergraph,
//!   the original persistence surface kept for compatibility and tooling;
//! * the **legacy full-index format** (`VERIDX\x02`) — everything
//!   [`DiscoveryIndex`] holds, as one monolithic body. Still readable
//!   ([`index_from_bytes`] dispatches on the magic byte) so artifacts
//!   written by older builds keep loading; [`index_to_bytes_v2`] still
//!   writes it for compat testing and downgrade tooling;
//! * the **checksummed full-index format** (`VERIDX\x03`) — the same five
//!   payload sections (build config, column profiles with their
//!   distinct-hash vectors, MinHash signatures, keyword index, hypergraph),
//!   each framed as `len u64 · payload · checksum u64`, followed by a
//!   whole-file trailer checksum. This is what [`save_index`] writes and
//!   what the `ver-serve` serving layer warm-starts from: [`load_index`]
//!   must reproduce the in-memory index **exactly**
//!   ([`DiscoveryIndex::same_contents`]), so a warm-started engine answers
//!   queries bit-identically to one that rebuilt the index from the
//!   catalog. See ARCHITECTURE.md ("Offline → online contract").
//!
//! ```text
//! full index  "VERIDX\x03"
//!   5 × section   len u64 · payload · checksum u64     (fxhash-folded)
//!     config      minhash_k u32 · containment f64 · verify_exact u8 ·
//!                 sample_cap u64 · threads u32 · seed u64 · value_cap u64
//!     profiles    n u32 × { id u32 · table u32 · ordinal u16 · dtype u8 ·
//!                           rows/nulls/distinct u64 · sample [str] · hashes [u64] }
//!     sigs        n u32 × { cardinality u64 · sig [u64] }
//!     keyword     values/attributes [str → [u32]] · tables [str → u32] ·
//!                 table_columns [u32 → [u32]]   (all key-sorted = canonical)
//!     graph       ncols u32 · tabs u32×n · edges u64 × (u32, u32, f32)
//!   trailer       checksum u64 over every preceding byte (magic included)
//! ```
//!
//! **Corruption detection.** The trailer checksum is verified over the raw
//! bytes *before any parsing*, so a truncated download, a torn write, or a
//! single flipped bit anywhere in the artifact — length fields and the
//! trailer itself included — fails with [`VerError::Serde`] up front. The
//! per-section checksums then localise the damage ("profiles section
//! checksum mismatch") for artifacts corrupted in ways the trailer cannot
//! attribute. All lengths are still validated against the remaining input
//! before allocation, so even legacy `\x02` artifacts (which carry no
//! checksums) fail with [`VerError::Serde`] instead of panicking or
//! over-allocating. The MinHash family is *not* stored: it is a pure
//! function of `(minhash_k, seed)`, both in the config.
//!
//! **Crash safety.** [`save_index`] and [`save_hypergraph`] write through a
//! temp file in the destination directory, `fsync` it, and atomically
//! rename it into place — a crash mid-save leaves either the old artifact
//! or the new one, never a torn hybrid. The writers also host the
//! `persist.save` / `persist.bytes` fault-injection points
//! ([`ver_common::fault`]), which the chaos suite uses to prove exactly
//! that.

use crate::builder::IndexConfig;
use crate::engine::DiscoveryIndex;
use crate::hypergraph::JoinHypergraph;
use crate::minhash::{MinHashSignature, MinHasher};
use crate::valueindex::KeywordIndex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ver_common::error::{Result, VerError};
use ver_common::ids::{ColumnId, ColumnRef, TableId};
use ver_common::value::DataType;
use ver_store::profile::ColumnProfile;

const MAGIC: &[u8; 8] = b"VERIDX\x01\x00";
const MAGIC_FULL_V2: &[u8; 8] = b"VERIDX\x02\x00";
const MAGIC_FULL_V3: &[u8; 8] = b"VERIDX\x03\x00";

/// Section names in on-disk order, used to name the damaged section in
/// checksum-mismatch errors.
const SECTIONS: [&str; 5] = ["config", "profiles", "signatures", "keyword", "hypergraph"];

/// xxhash-style checksum, hand-rolled on the workspace fxhash primitive:
/// seed with the section index, fold the payload as little-endian 64-bit
/// words (zero-padded tail), and close over the length so zero-extension
/// cannot collide. Not cryptographic — it detects the accidents that
/// matter here: bit rot, truncation, torn writes, and swapped sections.
pub(crate) fn checksum(section: u64, payload: &[u8]) -> u64 {
    use ver_common::fxhash::fx_step;
    let mut h = fx_step(0xc3a5_c85c_97cb_3127, section);
    let mut words = payload.chunks_exact(8);
    for w in &mut words {
        h = fx_step(h, u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = fx_step(h, u64::from_le_bytes(tail));
    }
    fx_step(h, payload.len() as u64)
}

// ---------------------------------------------------------------------------
// Bounds-checked reading.

/// A cursor over input bytes whose reads are all length-checked: every
/// decoder path returns `VerError::Serde` on truncated input rather than
/// panicking inside the `bytes` crate.
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cursor { data }
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.data.remaining() < n {
            return Err(VerError::Serde(format!("truncated {what}")));
        }
        Ok(())
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        self.need(1, what)?;
        Ok(self.data.get_u8())
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        self.need(2, what)?;
        Ok(self.data.get_u16_le())
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32> {
        self.need(4, what)?;
        Ok(self.data.get_u32_le())
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64> {
        self.need(8, what)?;
        Ok(self.data.get_u64_le())
    }

    pub(crate) fn f32(&mut self, what: &str) -> Result<f32> {
        self.need(4, what)?;
        Ok(self.data.get_f32_le())
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        self.need(8, what)?;
        Ok(self.data.get_f64_le())
    }

    /// A `u32` length prefix, validated so that `len * item_bytes` items can
    /// actually follow (blocks huge bogus allocations from corrupt input).
    pub(crate) fn len(&mut self, item_bytes: usize, what: &str) -> Result<usize> {
        let n = self.u32(what)? as usize;
        self.need(n.saturating_mul(item_bytes), what)?;
        Ok(n)
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let n = self.len(1, what)?;
        let (head, tail) = self.data.split_at(n);
        let s = std::str::from_utf8(head)
            .map_err(|_| VerError::Serde(format!("non-utf8 {what}")))?
            .to_string();
        self.data = tail;
        Ok(s)
    }

    fn u64_vec(&mut self, what: &str) -> Result<Vec<u64>> {
        let n = self.len(8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.data.get_u64_le());
        }
        Ok(out)
    }

    fn column_ids(&mut self, what: &str) -> Result<Vec<ColumnId>> {
        let n = self.len(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(ColumnId(self.data.get_u32_le()));
        }
        Ok(out)
    }

    /// Take the next `n` raw bytes (used to slice out framed sections).
    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.need(n, what)?;
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.data.remaining() == 0
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_u64_slice(buf: &mut BytesMut, v: &[u64]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_u64_le(x);
    }
}

fn put_column_ids(buf: &mut BytesMut, v: &[ColumnId]) {
    buf.put_u32_le(v.len() as u32);
    for c in v {
        buf.put_u32_le(c.0);
    }
}

fn dtype_code(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Unknown => 3,
    }
}

fn dtype_of(code: u8) -> Result<DataType> {
    Ok(match code {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Unknown,
        other => return Err(VerError::Serde(format!("unknown dtype code {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Hypergraph format (VERIDX\x01).

/// Serialise a hypergraph to bytes.
pub fn hypergraph_to_bytes(g: &JoinHypergraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + g.column_count() * 4 + g.joinable_pairs() * 12);
    buf.put_slice(MAGIC);
    put_hypergraph(&mut buf, g);
    buf.freeze()
}

/// Deserialise a hypergraph from bytes produced by [`hypergraph_to_bytes`].
pub fn hypergraph_from_bytes(data: &[u8]) -> Result<JoinHypergraph> {
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(VerError::Serde("bad magic header".into()));
    }
    let mut cur = Cursor::new(&data[MAGIC.len()..]);
    read_hypergraph(&mut cur)
}

/// Hypergraph section shared by both formats (no magic).
fn put_hypergraph(buf: &mut BytesMut, g: &JoinHypergraph) {
    buf.put_u32_le(g.column_count() as u32);
    for i in 0..g.column_count() {
        buf.put_u32_le(g.table_of(ColumnId(i as u32)).0);
    }
    buf.put_u64_le(g.joinable_pairs() as u64);
    for e in g.edges() {
        buf.put_u32_le(e.a.0);
        buf.put_u32_le(e.b.0);
        buf.put_f32_le(e.score);
    }
}

fn read_hypergraph(cur: &mut Cursor<'_>) -> Result<JoinHypergraph> {
    let ncols = cur.len(4, "column table")?;
    let mut col_table = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        col_table.push(TableId(cur.u32("column table")?));
    }
    let nedges = cur.u64("edge count")? as usize;
    cur.need(nedges.saturating_mul(12), "edge list")?;
    let mut g = JoinHypergraph::new(col_table);
    for _ in 0..nedges {
        let a = ColumnId(cur.u32("edge")?);
        let b = ColumnId(cur.u32("edge")?);
        let score = cur.f32("edge")?;
        if a.idx() >= ncols || b.idx() >= ncols || a == b {
            return Err(VerError::Serde(format!("invalid edge {a:?}-{b:?}")));
        }
        g.add_edge(a, b, score);
    }
    g.finalize();
    Ok(g)
}

/// Persist a hypergraph to a file (atomic temp-file + fsync + rename).
pub fn save_hypergraph(g: &JoinHypergraph, path: &std::path::Path) -> Result<()> {
    atomic_write(path, &hypergraph_to_bytes(g))
}

/// Load a hypergraph from a file.
pub fn load_hypergraph(path: &std::path::Path) -> Result<JoinHypergraph> {
    let data = std::fs::read(path)?;
    hypergraph_from_bytes(&data)
}

// ---------------------------------------------------------------------------
// Full-index formats (VERIDX\x02 monolithic, VERIDX\x03 checksummed).

/// Config section (the MinHash family is derived from k + seed on load).
/// `threads` is passed explicitly: the v3 writer canonicalises it to `0`
/// (auto) because the build-time worker count is not index content, while
/// the v2 writer preserves the historical byte layout exactly.
pub(crate) fn put_config(buf: &mut BytesMut, c: &IndexConfig, threads: u32) {
    buf.put_u32_le(c.minhash_k as u32);
    buf.put_f64_le(c.containment_threshold);
    buf.put_u8(u8::from(c.verify_exact));
    buf.put_u64_le(c.sample_cap as u64);
    buf.put_u32_le(threads);
    buf.put_u64_le(c.seed);
    buf.put_u64_le(c.value_index_cap as u64);
}

/// One column profile (shared by the full-index and shard formats).
pub(crate) fn put_profile(buf: &mut BytesMut, p: &ColumnProfile) {
    buf.put_u32_le(p.id.0);
    buf.put_u32_le(p.cref.table.0);
    buf.put_u16_le(p.cref.ordinal);
    buf.put_u8(dtype_code(p.dtype));
    buf.put_u64_le(p.rows as u64);
    buf.put_u64_le(p.nulls as u64);
    buf.put_u64_le(p.distinct as u64);
    buf.put_u32_le(p.sample.len() as u32);
    for s in &p.sample {
        put_string(buf, s);
    }
    put_u64_slice(buf, &p.hashes);
}

/// Column-profile section.
fn put_profiles(buf: &mut BytesMut, index: &DiscoveryIndex) {
    buf.put_u32_le(index.profiles().len() as u32);
    for p in index.profiles() {
        put_profile(buf, p);
    }
}

/// One MinHash signature (shared by the full-index and shard formats).
pub(crate) fn put_signature(buf: &mut BytesMut, sig: &MinHashSignature) {
    buf.put_u64_le(sig.cardinality as u64);
    put_u64_slice(buf, &sig.sig);
}

/// MinHash-signature section.
fn put_signatures(buf: &mut BytesMut, index: &DiscoveryIndex) {
    buf.put_u32_le(index.profiles().len() as u32);
    for i in 0..index.profiles().len() {
        put_signature(buf, index.signature(ColumnId(i as u32)));
    }
}

/// Keyword-index section, key-sorted for canonical bytes.
pub(crate) fn put_keyword(buf: &mut BytesMut, keyword: &KeywordIndex) {
    let (values, attributes, table_names, table_columns) = keyword.persist_parts();
    buf.put_u32_le(values.len() as u32);
    for (value, cols) in values {
        put_string(buf, value);
        put_column_ids(buf, cols);
    }
    buf.put_u32_le(attributes.len() as u32);
    for (name, cols) in attributes {
        put_string(buf, name);
        put_column_ids(buf, cols);
    }
    buf.put_u32_le(table_names.len() as u32);
    for (name, table) in table_names {
        put_string(buf, name);
        buf.put_u32_le(table.0);
    }
    buf.put_u32_le(table_columns.len() as u32);
    for (table, cols) in table_columns {
        buf.put_u32_le(table.0);
        put_column_ids(buf, cols);
    }
}

/// Serialise a complete [`DiscoveryIndex`] to bytes in the current
/// (`VERIDX\x03`) checksummed format.
///
/// The encoding is canonical: two indexes for which
/// [`DiscoveryIndex::same_contents`] holds produce identical bytes (keyword
/// maps are written in key order and the build-time `threads` knob is
/// canonicalised to `0`), so persisted artifacts can be compared
/// byte-for-byte across builds and thread counts.
pub fn index_to_bytes(index: &DiscoveryIndex) -> Bytes {
    let mut sections: [BytesMut; 5] = Default::default();
    put_config(&mut sections[0], index.config(), 0);
    put_profiles(&mut sections[1], index);
    put_signatures(&mut sections[2], index);
    put_keyword(&mut sections[3], index.keyword_index());
    put_hypergraph(&mut sections[4], index.hypergraph());
    frame_sections(MAGIC_FULL_V3, &sections)
}

/// Frame payload sections in the checksummed layout shared by the
/// `VERIDX\x03` full-index and `VERSHD\x01` shard formats: magic, then each
/// section as `len u64 · payload · checksum u64`, then a whole-file trailer
/// checksum (trailer pseudo-section index = number of sections, so a
/// section checksum can never masquerade as the trailer).
pub(crate) fn frame_sections(magic: &[u8; 8], sections: &[BytesMut]) -> Bytes {
    let total: usize = sections.iter().map(|s| s.len() + 16).sum();
    let mut buf = BytesMut::with_capacity(magic.len() + total + 8);
    buf.put_slice(magic);
    for (i, payload) in sections.iter().enumerate() {
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(payload);
        buf.put_u64_le(checksum(i as u64, payload));
    }
    let trailer = checksum(sections.len() as u64, &buf);
    buf.put_u64_le(trailer);
    buf.freeze()
}

/// Decode a [`frame_sections`] artifact: verify the whole-file trailer over
/// the raw bytes *before any parsing*, then check and slice out each named
/// section. Returns one payload slice per name, in order.
pub(crate) fn read_framed_sections<'a>(
    data: &'a [u8],
    magic: &[u8; 8],
    names: &[&str],
) -> Result<Vec<&'a [u8]>> {
    let body_len = data.len().saturating_sub(8);
    if body_len < magic.len() {
        return Err(VerError::Serde(
            "truncated artifact (missing trailer)".into(),
        ));
    }
    let (body, trailer) = data.split_at(body_len);
    let expected = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if checksum(names.len() as u64, body) != expected {
        return Err(VerError::Serde(
            "trailer checksum mismatch (corrupt or truncated artifact)".into(),
        ));
    }
    if &body[..magic.len()] != magic {
        return Err(VerError::Serde("bad magic header".into()));
    }
    let mut cur = Cursor::new(&body[magic.len()..]);
    let mut payloads = Vec::with_capacity(names.len());
    for (i, name) in names.iter().enumerate() {
        let len = cur.u64(&format!("{name} section length"))? as usize;
        let payload = cur.bytes(len, &format!("{name} section"))?;
        let sum = cur.u64(&format!("{name} section checksum"))?;
        if checksum(i as u64, payload) != sum {
            return Err(VerError::Serde(format!("{name} section checksum mismatch")));
        }
        payloads.push(payload);
    }
    if !cur.is_empty() {
        return Err(VerError::Serde("trailing bytes after sections".into()));
    }
    Ok(payloads)
}

/// Serialise a complete [`DiscoveryIndex`] in the legacy monolithic
/// `VERIDX\x02` layout (no checksums). Kept for read-compat testing and
/// for tooling that needs to produce artifacts older builds can load.
pub fn index_to_bytes_v2(index: &DiscoveryIndex) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC_FULL_V2);
    put_config(&mut buf, index.config(), index.config().threads as u32);
    put_profiles(&mut buf, index);
    put_signatures(&mut buf, index);
    put_keyword(&mut buf, index.keyword_index());
    put_hypergraph(&mut buf, index.hypergraph());
    buf.freeze()
}

/// Deserialise a [`DiscoveryIndex`] from bytes produced by
/// [`index_to_bytes`] (checksummed `\x03`) or [`index_to_bytes_v2`]
/// (legacy `\x02`) — the magic byte selects the decoder. The result
/// satisfies [`DiscoveryIndex::same_contents`] with the original.
pub fn index_from_bytes(data: &[u8]) -> Result<DiscoveryIndex> {
    if data.len() >= MAGIC_FULL_V3.len() && &data[..MAGIC_FULL_V3.len()] == MAGIC_FULL_V3 {
        return index_from_bytes_v3(data);
    }
    if data.len() < MAGIC_FULL_V2.len() || &data[..MAGIC_FULL_V2.len()] != MAGIC_FULL_V2 {
        return Err(VerError::Serde(
            "bad magic header (not a full-index artifact)".into(),
        ));
    }
    let mut cur = Cursor::new(&data[MAGIC_FULL_V2.len()..]);
    let index = read_index_body(&mut cur)?;
    if !cur.is_empty() {
        return Err(VerError::Serde("trailing bytes after index".into()));
    }
    Ok(index)
}

/// Decode the checksummed `VERIDX\x03` layout. The whole-file trailer is
/// verified over the raw bytes *before any parsing*, so any flipped bit or
/// truncation — in payloads, length fields, section checksums, or the
/// trailer itself — fails here with a typed error; the per-section
/// checksums then attribute damage to a named section.
fn index_from_bytes_v3(data: &[u8]) -> Result<DiscoveryIndex> {
    let payloads = read_framed_sections(data, MAGIC_FULL_V3, &SECTIONS)?;

    let section = |i: usize| -> Cursor<'_> { Cursor::new(payloads[i]) };
    let done = |cur: &Cursor<'_>, name: &str| -> Result<()> {
        if cur.is_empty() {
            Ok(())
        } else {
            Err(VerError::Serde(format!("trailing bytes in {name} section")))
        }
    };

    let mut cur = section(0);
    let config = read_config(&mut cur)?;
    done(&cur, "config")?;
    let mut cur = section(1);
    let profiles = read_profiles(&mut cur)?;
    done(&cur, "profiles")?;
    let mut cur = section(2);
    let signatures = read_signatures(&mut cur, profiles.len(), config.minhash_k)?;
    done(&cur, "signatures")?;
    let mut cur = section(3);
    let keyword = read_keyword(&mut cur, profiles.len())?;
    done(&cur, "keyword")?;
    let mut cur = section(4);
    let hypergraph = read_hypergraph(&mut cur)?;
    done(&cur, "hypergraph")?;

    assemble_checked(config, profiles, signatures, keyword, hypergraph)
}

/// Decode the shared body layout (config → profiles → signatures → keyword
/// → hypergraph) from one cursor — the whole of a `\x02` artifact after
/// the magic, and the concatenation of a `\x03` artifact's payloads.
fn read_index_body(cur: &mut Cursor<'_>) -> Result<DiscoveryIndex> {
    let config = read_config(cur)?;
    let profiles = read_profiles(cur)?;
    let signatures = read_signatures(cur, profiles.len(), config.minhash_k)?;
    let keyword = read_keyword(cur, profiles.len())?;
    let hypergraph = read_hypergraph(cur)?;
    assemble_checked(config, profiles, signatures, keyword, hypergraph)
}

/// Final cross-section validation + assembly shared by both decoders.
fn assemble_checked(
    config: IndexConfig,
    profiles: Vec<ColumnProfile>,
    signatures: Vec<MinHashSignature>,
    keyword: KeywordIndex,
    hypergraph: JoinHypergraph,
) -> Result<DiscoveryIndex> {
    if hypergraph.column_count() != profiles.len() {
        return Err(VerError::Serde(format!(
            "hypergraph columns {} != profile count {}",
            hypergraph.column_count(),
            profiles.len()
        )));
    }
    let hasher = MinHasher::new(config.minhash_k, config.seed);
    Ok(DiscoveryIndex::assemble(
        config, profiles, hasher, signatures, keyword, hypergraph,
    ))
}

pub(crate) fn read_config(cur: &mut Cursor<'_>) -> Result<IndexConfig> {
    let config = IndexConfig {
        minhash_k: cur.u32("config")? as usize,
        containment_threshold: cur.f64("config")?,
        verify_exact: cur.u8("config")? != 0,
        sample_cap: cur.u64("config")? as usize,
        threads: cur.u32("config")? as usize,
        seed: cur.u64("config")?,
        value_index_cap: cur.u64("config")? as usize,
    };
    if config.minhash_k == 0 || config.minhash_k > 1 << 20 {
        return Err(VerError::Serde(format!(
            "implausible minhash_k {}",
            config.minhash_k
        )));
    }
    Ok(config)
}

/// Profiles (each ≥ 34 bytes fixed header). Profile ids must be the
/// sequence 0..n — that is what the builder produces and what every
/// `Vec`-indexed lookup downstream assumes.
fn read_profiles(cur: &mut Cursor<'_>) -> Result<Vec<ColumnProfile>> {
    let nprofiles = cur.len(34, "profile table")?;
    let mut profiles = Vec::with_capacity(nprofiles);
    for expected in 0..nprofiles {
        let p = read_profile(cur)?;
        if p.id.idx() != expected {
            return Err(VerError::Serde(format!(
                "profile id {:?} out of sequence (expected {expected})",
                p.id
            )));
        }
        profiles.push(p);
    }
    Ok(profiles)
}

/// One column profile (shared by the full-index and shard decoders; id
/// sequencing is the caller's concern — the full format requires the dense
/// sequence `0..n`, a shard a strictly increasing subsequence).
pub(crate) fn read_profile(cur: &mut Cursor<'_>) -> Result<ColumnProfile> {
    let id = ColumnId(cur.u32("profile id")?);
    let cref = ColumnRef {
        table: TableId(cur.u32("profile cref")?),
        ordinal: cur.u16("profile cref")?,
    };
    let dtype = dtype_of(cur.u8("profile dtype")?)?;
    let rows = cur.u64("profile rows")? as usize;
    let nulls = cur.u64("profile nulls")? as usize;
    let distinct = cur.u64("profile distinct")? as usize;
    let nsample = cur.len(4, "profile sample")?;
    let mut sample = Vec::with_capacity(nsample);
    for _ in 0..nsample {
        sample.push(cur.string("profile sample value")?);
    }
    let hashes = cur.u64_vec("profile hashes")?;
    Ok(ColumnProfile {
        id,
        cref,
        dtype,
        rows,
        nulls,
        distinct,
        sample,
        hashes,
    })
}

/// One MinHash signature (shared by the full-index and shard decoders).
pub(crate) fn read_signature(cur: &mut Cursor<'_>, minhash_k: usize) -> Result<MinHashSignature> {
    let cardinality = cur.u64("signature cardinality")? as usize;
    let sig = cur.u64_vec("signature")?;
    if sig.len() != minhash_k {
        return Err(VerError::Serde(format!(
            "signature length {} != minhash_k {minhash_k}",
            sig.len(),
        )));
    }
    Ok(MinHashSignature { sig, cardinality })
}

fn read_signatures(
    cur: &mut Cursor<'_>,
    nprofiles: usize,
    minhash_k: usize,
) -> Result<Vec<MinHashSignature>> {
    let nsigs = cur.len(12, "signature table")?;
    if nsigs != nprofiles {
        return Err(VerError::Serde(format!(
            "signature count {nsigs} != profile count {nprofiles}"
        )));
    }
    let mut signatures = Vec::with_capacity(nsigs);
    for _ in 0..nsigs {
        signatures.push(read_signature(cur, minhash_k)?);
    }
    Ok(signatures)
}

pub(crate) fn read_keyword(cur: &mut Cursor<'_>, nprofiles: usize) -> Result<KeywordIndex> {
    // Keyword postings index into the profile/signature tables at query
    // time (`DiscoveryIndex::profile`/`signature` are plain `Vec` lookups),
    // so every ColumnId must be validated here — an out-of-range posting in
    // a corrupt artifact must fail the load, not panic the first query.
    let check_cols = |cols: &[ColumnId], what: &str| -> Result<()> {
        match cols.iter().find(|c| c.idx() >= nprofiles) {
            Some(bad) => Err(VerError::Serde(format!(
                "{what} references column {bad:?} but only {nprofiles} profiles exist"
            ))),
            None => Ok(()),
        }
    };
    let nvalues = cur.len(8, "keyword values")?;
    let mut values = Vec::with_capacity(nvalues);
    for _ in 0..nvalues {
        let value = cur.string("keyword value")?;
        let cols = cur.column_ids("keyword postings")?;
        check_cols(&cols, "keyword posting")?;
        values.push((value, cols));
    }
    let nattrs = cur.len(8, "keyword attributes")?;
    let mut attributes = Vec::with_capacity(nattrs);
    for _ in 0..nattrs {
        let name = cur.string("attribute name")?;
        let cols = cur.column_ids("attribute postings")?;
        check_cols(&cols, "attribute posting")?;
        attributes.push((name, cols));
    }
    let ntables = cur.len(8, "table names")?;
    let mut table_names = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = cur.string("table name")?;
        table_names.push((name, TableId(cur.u32("table id")?)));
    }
    let ntcols = cur.len(8, "table columns")?;
    let mut table_columns = Vec::with_capacity(ntcols);
    for _ in 0..ntcols {
        let table = TableId(cur.u32("table id")?);
        let cols = cur.column_ids("table column list")?;
        check_cols(&cols, "table column list")?;
        table_columns.push((table, cols));
    }
    Ok(KeywordIndex::from_persist_parts(
        values,
        attributes,
        table_names,
        table_columns,
    ))
}

// ---------------------------------------------------------------------------
// Crash-safe file I/O.

/// Write `bytes` to `path` atomically: temp file in the destination
/// directory → `fsync` → rename over the target → `fsync` the directory.
/// A crash at any point leaves either the complete old file or the
/// complete new one, never a torn hybrid (rename within one directory is
/// atomic on POSIX filesystems).
pub(crate) fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<()> {
    use std::io::Write;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut name = path
        .file_name()
        .ok_or_else(|| VerError::Io(format!("cannot write to {}", path.display())))?
        .to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&name),
        None => std::path::PathBuf::from(&name),
    };
    let result = (|| -> Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
        return result;
    }
    // Make the rename itself durable. Directories cannot be opened for
    // writing on all platforms; treat a failed dir sync as best-effort.
    if let Some(d) = dir {
        if let Ok(dirf) = std::fs::File::open(d) {
            dirf.sync_all().ok();
        }
    }
    Ok(())
}

/// Persist a complete discovery index to a file (checksummed `\x03`
/// format, atomic temp-file + fsync + rename write).
pub fn save_index(index: &DiscoveryIndex, path: &std::path::Path) -> Result<()> {
    ver_common::fault::hit(ver_common::fault::points::PERSIST_SAVE)?;
    let mut bytes = index_to_bytes(index).to_vec();
    ver_common::fault::corrupt_bytes(ver_common::fault::points::PERSIST_BYTES, &mut bytes);
    atomic_write(path, &bytes)
}

/// Load a complete discovery index from a file written by [`save_index`]
/// (or a legacy `\x02` artifact).
pub fn load_index(path: &std::path::Path) -> Result<DiscoveryIndex> {
    ver_common::fault::hit(ver_common::fault::points::PERSIST_LOAD)?;
    let data = std::fs::read(path)?;
    index_from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_index;
    use ver_common::value::Value;
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    fn graph() -> JoinHypergraph {
        let col_table = vec![TableId(0), TableId(0), TableId(1), TableId(2)];
        let mut g = JoinHypergraph::new(col_table);
        g.add_edge(ColumnId(0), ColumnId(2), 0.9);
        g.add_edge(ColumnId(1), ColumnId(3), 0.85);
        g.finalize();
        g
    }

    /// A catalog exercising every persisted feature: joinable text columns,
    /// numeric columns, nulls, and an unnamed-header table.
    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..50).map(|i| format!("state_{i}")).collect();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().take(40).enumerate() {
            b.push_row(vec![
                Value::text(format!("A{i:03}")),
                Value::text(s.clone()),
            ])
            .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("states", &["name", "pop"]);
        for (i, s) in states.iter().enumerate() {
            let pop = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(1000 + i as i64)
            };
            b.push_row(vec![Value::text(s.clone()), pop]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    fn build(verify_exact: bool) -> DiscoveryIndex {
        build_index(
            &catalog(),
            IndexConfig {
                threads: 1,
                verify_exact,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = graph();
        let bytes = hypergraph_to_bytes(&g);
        let g2 = hypergraph_from_bytes(&bytes).unwrap();
        assert_eq!(g2.column_count(), g.column_count());
        assert_eq!(g2.joinable_pairs(), g.joinable_pairs());
        assert_eq!(
            g2.neighbors(ColumnId(0), 0.0),
            g.neighbors(ColumnId(0), 0.0)
        );
        assert_eq!(g2.table_of(ColumnId(3)), TableId(2));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = hypergraph_to_bytes(&graph()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            hypergraph_from_bytes(&bytes),
            Err(VerError::Serde(_))
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = hypergraph_to_bytes(&graph());
        for cut in [4usize, 12, bytes.len() - 3] {
            assert!(
                hypergraph_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_edge_ids_rejected() {
        let g = graph();
        let mut bytes = hypergraph_to_bytes(&g).to_vec();
        // First edge starts after magic(8) + ncols(4) + tabs(16) + nedges(8).
        let edge_off = 8 + 4 + 16 + 8;
        bytes[edge_off..edge_off + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(hypergraph_from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ver_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hypergraph.bin");
        let g = graph();
        save_hypergraph(&g, &path).unwrap();
        let g2 = load_hypergraph(&path).unwrap();
        assert_eq!(g2.joinable_pairs(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = JoinHypergraph::new(vec![]);
        let g2 = hypergraph_from_bytes(&hypergraph_to_bytes(&g)).unwrap();
        assert_eq!(g2.column_count(), 0);
        assert_eq!(g2.joinable_pairs(), 0);
    }

    #[test]
    fn full_index_roundtrips_exactly() {
        for verify_exact in [false, true] {
            let idx = build(verify_exact);
            let bytes = index_to_bytes(&idx);
            let loaded = index_from_bytes(&bytes).unwrap();
            assert!(
                loaded.same_contents(&idx),
                "verify_exact={verify_exact}: loaded index diverged"
            );
            // Config fields round-trip too (not covered by same_contents).
            assert_eq!(loaded.config().minhash_k, idx.config().minhash_k);
            assert_eq!(loaded.config().seed, idx.config().seed);
            assert_eq!(loaded.config().verify_exact, verify_exact);
            assert!(
                (loaded.config().containment_threshold - idx.config().containment_threshold).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn full_index_encoding_is_canonical() {
        // Thread counts build identical indexes; their bytes must match too.
        let one = build_index(
            &catalog(),
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        let four = build_index(
            &catalog(),
            IndexConfig {
                threads: 4,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        // The v3 writer canonicalises the build-time `threads` knob, so the
        // artifacts match without masking anything.
        assert_eq!(
            index_to_bytes(&one).to_vec(),
            index_to_bytes(&four).to_vec(),
            "canonical encoding differs across thread counts"
        );
        // Legacy v2 preserves `threads` verbatim; blank it on both sides
        // (offset: magic 8 + k 4 + threshold 8 + exact 1 + sample_cap 8).
        let mut a = index_to_bytes_v2(&one).to_vec();
        let b = index_to_bytes_v2(&four).to_vec();
        let t_off = 8 + 4 + 8 + 1 + 8;
        a[t_off..t_off + 4].copy_from_slice(&b[t_off..t_off + 4]);
        assert_eq!(a, b, "v2 encoding differs beyond the threads field");
    }

    #[test]
    fn v2_artifacts_still_load() {
        // Read-compat: the legacy monolithic layout loads into the same
        // index as the checksummed one.
        let idx = build(true);
        let v2 = index_to_bytes_v2(&idx);
        assert_eq!(&v2[..8], b"VERIDX\x02\x00");
        let from_v2 = index_from_bytes(&v2).unwrap();
        assert!(from_v2.same_contents(&idx), "v2 load diverged");
        let from_v3 = index_from_bytes(&index_to_bytes(&idx)).unwrap();
        assert!(from_v2.same_contents(&from_v3), "v2 and v3 loads diverge");
        // v2 round-trips the historical threads field; v3 canonicalises it.
        assert_eq!(from_v2.config().threads, idx.config().threads);
        assert_eq!(from_v3.config().threads, 0);
    }

    #[test]
    fn v3_flipped_bits_fail_with_serde() {
        let idx = build(false);
        let bytes = index_to_bytes(&idx).to_vec();
        assert_eq!(&bytes[..8], b"VERIDX\x03\x00");
        // Flip one bit at a spread of offsets covering the magic, section
        // framing, payloads, section checksums, and the trailer.
        for frac in 0..32 {
            let off = (bytes.len() - 1) * frac / 31;
            let mut bad = bytes.clone();
            bad[off] ^= 0x10;
            let err = index_from_bytes(&bad);
            assert!(
                matches!(err, Err(VerError::Serde(_))),
                "flip at {off}: got {err:?}"
            );
        }
    }

    #[test]
    fn v3_section_checksum_names_the_damaged_section() {
        let idx = build(false);
        let bytes = index_to_bytes(&idx).to_vec();
        // Corrupt one byte inside the profiles payload (section 1) and
        // recompute the trailer so only the section check can catch it.
        let config_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let profiles_payload_start = 8 + 8 + config_len + 8 + 8;
        let mut bad = bytes.clone();
        bad[profiles_payload_start + 10] ^= 0xFF;
        let body_len = bad.len() - 8;
        let trailer = checksum(SECTIONS.len() as u64, &bad[..body_len]);
        bad[body_len..].copy_from_slice(&trailer.to_le_bytes());
        match index_from_bytes(&bad) {
            Err(VerError::Serde(m)) => {
                assert!(m.contains("profiles section"), "message: {m:?}")
            }
            other => panic!("expected named section error, got {other:?}"),
        }
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("ver_index_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.bin");
        let idx = build(false);
        // Overwrite an existing (garbage) file in place.
        std::fs::write(&path, b"old garbage").unwrap();
        save_index(&idx, &path).unwrap();
        assert!(load_index(&path).unwrap().same_contents(&idx));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "index.bin")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn injected_save_faults_surface_and_clear() {
        use ver_common::fault::{self, points, FaultKind};
        let dir = std::env::temp_dir().join(format!("ver_index_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.bin");
        let idx = build(false);

        // Injected IO error on save: typed, and nothing is written.
        fault::arm_times(points::PERSIST_SAVE, FaultKind::IoError, 1);
        let err = save_index(&idx, &path);
        assert!(matches!(err, Err(VerError::Io(_))), "got {err:?}");
        assert!(!path.exists(), "failed save must not leave a file");

        // Injected byte corruption on save: the checksum catches it at load.
        fault::arm_times(points::PERSIST_BYTES, FaultKind::CorruptByte, 1);
        save_index(&idx, &path).unwrap();
        let err = load_index(&path);
        assert!(matches!(err, Err(VerError::Serde(_))), "got {err:?}");

        // Harness disarmed: the same path works again.
        fault::reset();
        save_index(&idx, &path).unwrap();
        assert!(load_index(&path).unwrap().same_contents(&idx));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn full_index_file_roundtrip_and_api_equivalence() {
        let dir = std::env::temp_dir().join(format!("ver_index_full_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.bin");
        let idx = build(true);
        save_index(&idx, &path).unwrap();
        let loaded = load_index(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();

        // The three Appendix-A API calls answer identically.
        use crate::valueindex::{Fuzziness, SearchTarget};
        assert_eq!(
            loaded.search_keyword("state_7", SearchTarget::Values, Fuzziness::Exact),
            idx.search_keyword("state_7", SearchTarget::Values, Fuzziness::Exact)
        );
        assert_eq!(
            loaded.neighbors(ColumnId(1), 0.8),
            idx.neighbors(ColumnId(1), 0.8)
        );
        let tabs = [TableId(0), TableId(1)];
        assert_eq!(
            loaded.generate_join_graphs(&tabs, 2).len(),
            idx.generate_join_graphs(&tabs, 2).len()
        );
    }

    #[test]
    fn full_index_rejects_wrong_magic_and_truncation() {
        let idx = build(false);
        let bytes = index_to_bytes(&idx).to_vec();
        // Hypergraph magic is not a full-index artifact.
        assert!(index_from_bytes(&hypergraph_to_bytes(idx.hypergraph())).is_err());
        // Any truncation point must error, never panic.
        for frac in 1..20 {
            let cut = bytes.len() * frac / 20;
            assert!(index_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 3]);
        assert!(index_from_bytes(&padded).is_err());
    }

    #[test]
    fn full_index_rejects_out_of_range_postings() {
        // A structurally valid artifact whose keyword postings point past
        // the profile table must fail the load with a typed error — not
        // panic at query time inside a Vec lookup.
        let idx = build(false);
        let bytes = index_to_bytes(&idx).to_vec();
        let good = index_from_bytes(&bytes).unwrap();
        let nprofiles = good.profiles().len() as u32;
        // Find a keyword posting: scan for any 4-byte LE value equal to a
        // known posting id is fragile; instead corrupt via the API surface —
        // rebuild bytes from parts with one posting bumped out of range.
        let (values, attrs, tabs, tcols) = good.keyword_index().persist_parts();
        let mut values: Vec<(String, Vec<ColumnId>)> = values
            .into_iter()
            .map(|(s, c)| (s.clone(), c.clone()))
            .collect();
        values[0].1[0] = ColumnId(nprofiles + 7);
        let corrupt_kw = KeywordIndex::from_persist_parts(
            values,
            attrs
                .into_iter()
                .map(|(s, c)| (s.clone(), c.clone()))
                .collect(),
            tabs.into_iter().map(|(s, t)| (s.clone(), t)).collect(),
            tcols.into_iter().map(|(t, c)| (t, c.clone())).collect(),
        );
        let corrupt = DiscoveryIndex::assemble(
            good.config().clone(),
            good.profiles().to_vec(),
            good.hasher().clone(),
            (0..good.profiles().len())
                .map(|i| good.signature(ColumnId(i as u32)).clone())
                .collect(),
            corrupt_kw,
            good.hypergraph().clone(),
        );
        let err = index_from_bytes(&index_to_bytes(&corrupt));
        assert!(matches!(err, Err(VerError::Serde(_))), "got {err:?}");
    }

    #[test]
    fn full_index_rejects_implausible_lengths() {
        // Use the checksum-free v2 layout so the length validation itself
        // is exercised (v3 would reject at the trailer before parsing).
        let idx = build(false);
        let mut bytes = index_to_bytes_v2(&idx).to_vec();
        // Blow up the profile count field (magic 8 + config 41 bytes).
        let off = 8 + 4 + 8 + 1 + 8 + 4 + 8 + 8;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(index_from_bytes(&bytes), Err(VerError::Serde(_))));
    }
}
