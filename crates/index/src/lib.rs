//! Discovery engine & index — Ver's Aurum/Lazo substrate, from scratch.
//!
//! The paper's DISCOVERY ENGINE builds indices over pathless table
//! collections offline and serves them online through three API functions
//! (Appendix A), all implemented here:
//!
//! * `SEARCH-KEYWORD(target, fuzzy)` → [`valueindex`] (exact and
//!   Levenshtein-fuzzy lookup over values, attribute names, table names);
//! * `NEIGHBORS(threshold)` → [`hypergraph`] (joinable columns by estimated
//!   Jaccard containment);
//! * `GENERATE-JOIN-GRAPHS(tables, ρ)` → [`joinpath`] (join-graph trees with
//!   bounded hops).
//!
//! Containment is estimated Lazo-style from MinHash signatures
//! ([`minhash`]), with LSH banding ([`lsh`]) keeping candidate generation
//! sub-quadratic. [`builder`] runs the offline pass on the work-stealing
//! runtime in `ver_common::pool` (profiles, signatures, keyword indexing
//! and candidate verification all fan out; results are bit-identical for
//! any thread count) and [`engine`] is the online façade. [`persist`]
//! serialises the hypergraph — the expensive offline product — to a
//! compact binary format.
//!
//! Layer 2 of the crate map in the repo-root `ARCHITECTURE.md` — the
//! offline half of the pipeline; its persisted artifact is what the
//! serving layer warm-starts from.

pub mod builder;
pub mod engine;
pub mod hypergraph;
pub mod joinpath;
pub mod lsh;
pub mod minhash;
pub mod persist;
pub mod shard;
pub mod valueindex;

pub use builder::{build_index, IndexConfig};
pub use engine::DiscoveryIndex;
pub use hypergraph::JoinHypergraph;
pub use joinpath::{JoinGraph, JoinGraphEdge, JoinGraphOptions};
pub use lsh::LshIndex;
pub use minhash::{
    estimated_containment, estimated_containment_max, estimated_jaccard, exact_containment,
    exact_jaccard, hashed_containment, hashed_containment_max, hashed_containment_scalar,
    hashed_jaccard, MinHashSignature, MinHasher,
};
pub use shard::{
    load_shard, load_sharded_index, merge_shards, partition_index, save_shard, save_sharded_index,
    shard_from_bytes, shard_of_table, shard_to_bytes, IndexShard,
};
pub use valueindex::{Fuzziness, SearchTarget};
