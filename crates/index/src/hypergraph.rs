//! The column-level join hypergraph.
//!
//! Nodes are columns; an (undirected) edge links two columns whose estimated
//! Jaccard containment exceeds the build threshold — the inclusion
//! dependencies that stand in for join paths in pathless collections
//! (Challenge 2). The hypergraph answers the Aurum API's
//! `NEIGHBORS(threshold)` and provides the table-level adjacency that
//! join-graph enumeration walks.

use serde::{Deserialize, Serialize};
use ver_common::ids::{ColumnId, TableId};

/// An undirected join edge between two columns with its containment score
/// (the max of the two directional containments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinableEdge {
    /// One endpoint.
    pub a: ColumnId,
    /// Other endpoint.
    pub b: ColumnId,
    /// Containment score in `[0, 1]`.
    pub score: f32,
}

/// Column-level join graph with a table-level projection.
///
/// Equality compares the full adjacency structure (including scores) —
/// used by the determinism tests to assert that parallel builds reproduce
/// the sequential hypergraph exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinHypergraph {
    /// Column → owning table (indexed by `ColumnId`).
    col_table: Vec<TableId>,
    /// Column → sorted neighbor list.
    adj: Vec<Vec<(ColumnId, f32)>>,
    /// Total undirected edges.
    edge_count: usize,
}

impl JoinHypergraph {
    /// Create a graph over `col_table.len()` columns; `col_table[i]` is the
    /// owning table of `ColumnId(i)`.
    pub fn new(col_table: Vec<TableId>) -> Self {
        let n = col_table.len();
        JoinHypergraph {
            col_table,
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of columns (nodes).
    pub fn column_count(&self) -> usize {
        self.col_table.len()
    }

    /// Number of undirected joinable column pairs (Table I's
    /// "# Joinable Columns").
    pub fn joinable_pairs(&self) -> usize {
        self.edge_count
    }

    /// Owning table of a column.
    pub fn table_of(&self, c: ColumnId) -> TableId {
        self.col_table[c.idx()]
    }

    /// Add an undirected edge. Duplicate edges update the score to the max.
    pub fn add_edge(&mut self, a: ColumnId, b: ColumnId, score: f32) {
        assert!(a != b, "self-edges are meaningless");
        if let Some(slot) = self.adj[a.idx()].iter_mut().find(|(n, _)| *n == b) {
            slot.1 = slot.1.max(score);
            if let Some(slot) = self.adj[b.idx()].iter_mut().find(|(n, _)| *n == a) {
                slot.1 = slot.1.max(score);
            }
            return;
        }
        self.adj[a.idx()].push((b, score));
        self.adj[b.idx()].push((a, score));
        self.edge_count += 1;
    }

    /// Finish construction: sort adjacency lists for determinism.
    pub fn finalize(&mut self) {
        for list in &mut self.adj {
            list.sort_unstable_by_key(|(n, _)| *n);
        }
    }

    /// NEIGHBORS: columns joinable with `c` at containment ≥ `threshold`.
    pub fn neighbors(&self, c: ColumnId, threshold: f64) -> Vec<(ColumnId, f32)> {
        self.adj
            .get(c.idx())
            .map(|list| {
                list.iter()
                    .filter(|(_, s)| *s as f64 >= threshold)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All column edges between tables `ta` and `tb` at ≥ `threshold`,
    /// as `(column in ta, column in tb, score)`.
    pub fn edges_between(
        &self,
        ta: TableId,
        tb: TableId,
        threshold: f64,
    ) -> Vec<(ColumnId, ColumnId, f32)> {
        let mut out = Vec::new();
        for (i, list) in self.adj.iter().enumerate() {
            if self.col_table[i] != ta {
                continue;
            }
            let ca = ColumnId(i as u32);
            for &(cb, s) in list {
                if self.col_table[cb.idx()] == tb && s as f64 >= threshold {
                    out.push((ca, cb, s));
                }
            }
        }
        out
    }

    /// Distinct neighbor tables of table `t` at ≥ `threshold` (sorted).
    pub fn table_neighbors(&self, t: TableId, threshold: f64) -> Vec<TableId> {
        let mut out: Vec<TableId> = Vec::new();
        for (i, list) in self.adj.iter().enumerate() {
            if self.col_table[i] != t {
                continue;
            }
            for &(n, s) in list {
                if s as f64 >= threshold {
                    let tn = self.col_table[n.idx()];
                    if tn != t {
                        out.push(tn);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Iterate all undirected edges once (`a < b`).
    pub fn edges(&self) -> impl Iterator<Item = JoinableEdge> + '_ {
        self.adj.iter().enumerate().flat_map(move |(i, list)| {
            let a = ColumnId(i as u32);
            list.iter()
                .filter(move |(b, _)| a < *b)
                .map(move |&(b, score)| JoinableEdge { a, b, score })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 tables × 2 columns: T0{C0,C1} T1{C2,C3} T2{C4,C5}.
    fn graph() -> JoinHypergraph {
        let col_table = vec![
            TableId(0),
            TableId(0),
            TableId(1),
            TableId(1),
            TableId(2),
            TableId(2),
        ];
        let mut g = JoinHypergraph::new(col_table);
        g.add_edge(ColumnId(1), ColumnId(2), 0.95);
        g.add_edge(ColumnId(3), ColumnId(4), 0.85);
        g.add_edge(ColumnId(0), ColumnId(5), 0.6);
        g.finalize();
        g
    }

    #[test]
    fn neighbors_filter_by_threshold() {
        let g = graph();
        assert_eq!(g.neighbors(ColumnId(1), 0.9), vec![(ColumnId(2), 0.95)]);
        assert!(g.neighbors(ColumnId(0), 0.8).is_empty());
        assert_eq!(g.neighbors(ColumnId(0), 0.5).len(), 1);
    }

    #[test]
    fn edges_between_tables() {
        let g = graph();
        let e = g.edges_between(TableId(0), TableId(1), 0.8);
        assert_eq!(e, vec![(ColumnId(1), ColumnId(2), 0.95)]);
        // direction matters for which side is reported first
        let e = g.edges_between(TableId(1), TableId(0), 0.8);
        assert_eq!(e, vec![(ColumnId(2), ColumnId(1), 0.95)]);
        assert!(g.edges_between(TableId(0), TableId(2), 0.8).is_empty());
    }

    #[test]
    fn table_neighbors_respect_threshold() {
        let g = graph();
        assert_eq!(g.table_neighbors(TableId(0), 0.8), vec![TableId(1)]);
        assert_eq!(
            g.table_neighbors(TableId(0), 0.5),
            vec![TableId(1), TableId(2)]
        );
    }

    #[test]
    fn duplicate_edges_keep_max_score() {
        let mut g = graph();
        let before = g.joinable_pairs();
        g.add_edge(ColumnId(2), ColumnId(1), 0.7); // lower score, reversed
        assert_eq!(g.joinable_pairs(), before);
        assert_eq!(g.neighbors(ColumnId(1), 0.9), vec![(ColumnId(2), 0.95)]);
        g.add_edge(ColumnId(1), ColumnId(2), 0.99);
        assert_eq!(g.neighbors(ColumnId(1), 0.99), vec![(ColumnId(2), 0.99)]);
    }

    #[test]
    fn edge_iteration_visits_each_pair_once() {
        let g = graph();
        let edges: Vec<JoinableEdge> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges.len(), g.joinable_pairs());
        assert!(edges.iter().all(|e| e.a < e.b));
    }

    #[test]
    #[should_panic(expected = "self-edges")]
    fn self_edges_panic() {
        let mut g = graph();
        g.add_edge(ColumnId(0), ColumnId(0), 1.0);
    }
}
