//! Sharding one logical discovery index across N shard handles.
//!
//! The "millions of users" axis (ROADMAP direction 2): one logical catalog
//! is hashed **by table** onto `shard_count` shards. Each shard owns its
//! tables' column profiles, MinHash signatures, keyword postings, and the
//! hypergraph edges incident to its tables (an edge crossing a shard
//! boundary is stored by both endpoints' shards and deduplicated on
//! merge). Shards persist independently in a checksummed `VERSHD\x01`
//! artifact — the sibling of the full-index `VERIDX\x03` format, sharing
//! its section framing, checksums, and atomic write path — so shard builds
//! and loads can eventually live in separate processes.
//!
//! **Determinism invariant 11 (shard-count invariance).** Partitioning is a
//! pure function of `(TableId, shard_count)` ([`shard_of_table`]), and
//! [`merge_shards`] reconstructs the unsharded index **exactly**
//! ([`DiscoveryIndex::same_contents`] holds against a single-engine build)
//! for every shard count: profiles and signatures interleave back into
//! dense `ColumnId` order, keyword posting lists re-sort into the
//! builder's canonical ascending order, and the hypergraph is rebuilt from
//! the edge union. The sharded serving path (`ver-serve::ShardedEngine`)
//! is bit-identical to the single-engine run *because* the merged index is
//! — see `tests/parallel_determinism.rs`.

use crate::builder::IndexConfig;
use crate::engine::DiscoveryIndex;
use crate::hypergraph::{JoinHypergraph, JoinableEdge};
use crate::minhash::{MinHashSignature, MinHasher};
use crate::persist;
use crate::valueindex::KeywordIndex;
use bytes::{BufMut, Bytes, BytesMut};
use ver_common::error::{Result, VerError};
use ver_common::fxhash::fx_step;
use ver_common::ids::{ColumnId, TableId};
use ver_store::profile::ColumnProfile;

const MAGIC_SHARD: &[u8; 8] = b"VERSHD\x01\x00";

/// Section names of the `VERSHD\x01` layout, in on-disk order.
const SHARD_SECTIONS: [&str; 6] = [
    "config",
    "shard",
    "profiles",
    "signatures",
    "keyword",
    "hypergraph",
];

/// Owning shard of a table: a pure hash of `(table id, shard_count)`.
///
/// This mapping is the sharding contract — it decides which shard holds a
/// table's index slices at build time, which shard materializes a
/// candidate at query time, and which persisted shard artifact a table's
/// data lives in. It must stay stable across processes and releases, or
/// persisted shard sets stop matching their ids.
pub fn shard_of_table(table: TableId, shard_count: usize) -> usize {
    assert!(shard_count >= 1, "shard_count must be at least 1");
    // One fx round over a fixed seed scatters consecutive table ids; plain
    // modulo would lane all early tables onto shard 0 for small catalogs.
    (fx_step(0x5ee0_5ee0_5ee0_5ee0, table.0 as u64) % shard_count as u64) as usize
}

/// One shard's slice of a logical [`DiscoveryIndex`].
///
/// Holds everything the owning shard needs to answer for its tables: the
/// owned profiles/signatures (tagged with their **global** `ColumnId`s —
/// ids are never renumbered, so merging is a pure interleave), the owned
/// keyword postings, the incident hypergraph edges, and the full
/// column→table mapping (4 bytes per column) so any shard can resolve
/// ownership of any column without consulting its peers.
#[derive(Debug, Clone)]
pub struct IndexShard {
    config: IndexConfig,
    shard: u32,
    count: u32,
    /// Column → owning table, for **all** columns of the logical index.
    col_table: Vec<TableId>,
    /// Owned profiles, ascending global `ColumnId`.
    profiles: Vec<ColumnProfile>,
    /// Owned signatures, ascending global `ColumnId` (same id sequence as
    /// `profiles`).
    signatures: Vec<(ColumnId, MinHashSignature)>,
    /// Owned tables' keyword postings.
    keyword: KeywordIndex,
    /// Hypergraph edges incident to an owned table. A cross-shard edge is
    /// replicated on both endpoints' shards; [`merge_shards`] deduplicates.
    edges: Vec<JoinableEdge>,
}

impl IndexShard {
    /// This shard's id in `0..shard_count()`.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// Total number of shards in the set this shard belongs to.
    pub fn shard_count(&self) -> usize {
        self.count as usize
    }

    /// Build configuration of the logical index.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Number of columns owned by this shard.
    pub fn owned_columns(&self) -> usize {
        self.profiles.len()
    }

    /// Number of tables owned by this shard.
    pub fn owned_tables(&self) -> usize {
        let mut tables: Vec<TableId> = self
            .col_table
            .iter()
            .copied()
            .filter(|&t| shard_of_table(t, self.count as usize) == self.shard as usize)
            .collect();
        tables.dedup();
        tables.len()
    }

    /// Number of hypergraph edges stored on this shard (cross-shard edges
    /// count once per incident shard).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Structural equality ignoring the build config (mirrors
    /// [`DiscoveryIndex::same_contents`]).
    pub fn same_contents(&self, other: &IndexShard) -> bool {
        self.shard == other.shard
            && self.count == other.count
            && self.col_table == other.col_table
            && self.profiles == other.profiles
            && self.signatures == other.signatures
            && self.keyword == other.keyword
            && self.edges == other.edges
    }
}

/// Partition a built index into `shard_count` shards by table ownership.
///
/// Pure and deterministic: the same index and shard count always produce
/// the same shards, and `merge_shards(&partition_index(idx, n))` satisfies
/// [`DiscoveryIndex::same_contents`] with `idx` for every `n >= 1`.
pub fn partition_index(index: &DiscoveryIndex, shard_count: usize) -> Vec<IndexShard> {
    assert!(shard_count >= 1, "shard_count must be at least 1");
    let g = index.hypergraph();
    let ncols = g.column_count();
    let col_table: Vec<TableId> = (0..ncols).map(|i| g.table_of(ColumnId(i as u32))).collect();
    let owner_of_col = |c: ColumnId| shard_of_table(col_table[c.idx()], shard_count);

    let mut shards: Vec<IndexShard> = (0..shard_count)
        .map(|s| IndexShard {
            config: index.config().clone(),
            shard: s as u32,
            count: shard_count as u32,
            col_table: col_table.clone(),
            profiles: Vec::new(),
            signatures: Vec::new(),
            keyword: KeywordIndex::new(),
            edges: Vec::new(),
        })
        .collect();

    for (i, p) in index.profiles().iter().enumerate() {
        let c = ColumnId(i as u32);
        let s = owner_of_col(c);
        shards[s].profiles.push(p.clone());
        shards[s].signatures.push((c, index.signature(c).clone()));
    }
    let keyword_parts = index.keyword_index().partition(
        shard_count,
        |t| shard_of_table(t, shard_count),
        |c| col_table[c.idx()],
    );
    for (shard, part) in shards.iter_mut().zip(keyword_parts) {
        shard.keyword = part;
    }
    for e in g.edges() {
        let sa = owner_of_col(e.a);
        let sb = owner_of_col(e.b);
        shards[sa].edges.push(e);
        if sb != sa {
            shards[sb].edges.push(e);
        }
    }
    shards
}

/// Merge a complete shard set back into the logical [`DiscoveryIndex`].
///
/// Validates that the set is complete and consistent (every shard id
/// `0..count` exactly once, matching column→table maps, globally dense
/// column ids), then reconstructs the index exactly as the unsharded
/// builder would have produced it.
pub fn merge_shards(shards: &[IndexShard]) -> Result<DiscoveryIndex> {
    let first = shards
        .first()
        .ok_or_else(|| VerError::Serde("cannot merge an empty shard set".into()))?;
    let count = first.count as usize;
    if shards.len() != count {
        return Err(VerError::Serde(format!(
            "shard set has {} shards but each claims a set of {count}",
            shards.len()
        )));
    }
    let mut by_id: Vec<Option<&IndexShard>> = vec![None; count];
    for s in shards {
        if s.count as usize != count {
            return Err(VerError::Serde(format!(
                "shard {} claims {} total shards, set has {count}",
                s.shard, s.count
            )));
        }
        if s.col_table != first.col_table {
            return Err(VerError::Serde(format!(
                "shard {} column→table map diverges from shard {}",
                s.shard, first.shard
            )));
        }
        let slot = by_id
            .get_mut(s.shard as usize)
            .ok_or_else(|| VerError::Serde(format!("shard id {} out of range", s.shard)))?;
        if slot.replace(s).is_some() {
            return Err(VerError::Serde(format!("duplicate shard id {}", s.shard)));
        }
    }
    let ordered: Vec<&IndexShard> = by_id.into_iter().flatten().collect();

    // Profiles and signatures interleave back into dense ColumnId order.
    let ncols = first.col_table.len();
    let mut profiles: Vec<ColumnProfile> = ordered
        .iter()
        .flat_map(|s| s.profiles.iter().cloned())
        .collect();
    profiles.sort_unstable_by_key(|p| p.id);
    if profiles.len() != ncols {
        return Err(VerError::Serde(format!(
            "merged shards hold {} profiles, index has {ncols} columns",
            profiles.len()
        )));
    }
    for (i, p) in profiles.iter().enumerate() {
        if p.id.idx() != i {
            return Err(VerError::Serde(format!(
                "merged profile ids not dense at {i} (got {:?})",
                p.id
            )));
        }
    }
    let mut tagged: Vec<(ColumnId, MinHashSignature)> = ordered
        .iter()
        .flat_map(|s| s.signatures.iter().cloned())
        .collect();
    tagged.sort_unstable_by_key(|(c, _)| *c);
    if tagged.len() != ncols || tagged.iter().enumerate().any(|(i, (c, _))| c.idx() != i) {
        return Err(VerError::Serde(
            "merged signature ids are not the dense column sequence".into(),
        ));
    }
    let signatures: Vec<MinHashSignature> = tagged.into_iter().map(|(_, s)| s).collect();

    // Keyword postings: concatenate per-shard partitions, then restore the
    // builder's canonical ascending posting order (each column lives on
    // exactly one shard, so sorting is a pure permutation — no dedup).
    let mut keyword = KeywordIndex::new();
    for s in &ordered {
        keyword.merge(s.keyword.clone());
    }
    keyword.sort_postings();

    // Hypergraph: union of the incident-edge lists (cross-shard edges are
    // stored twice with identical scores; `add_edge` deduplicates).
    let mut g = JoinHypergraph::new(first.col_table.clone());
    for s in &ordered {
        for e in &s.edges {
            g.add_edge(e.a, e.b, e.score);
        }
    }
    g.finalize();

    let config = first.config.clone();
    let hasher = MinHasher::new(config.minhash_k, config.seed);
    Ok(DiscoveryIndex::assemble(
        config, profiles, hasher, signatures, keyword, g,
    ))
}

// ---------------------------------------------------------------------------
// Persistence (VERSHD\x01): the shard sibling of the VERIDX\x03 format.

/// Serialise one shard in the checksummed `VERSHD\x01` layout. Canonical
/// for the same reason `VERIDX\x03` is: keyword maps key-sorted, the
/// build-time `threads` knob canonicalised to `0`.
pub fn shard_to_bytes(shard: &IndexShard) -> Bytes {
    let mut sections: [BytesMut; 6] = Default::default();
    persist::put_config(&mut sections[0], &shard.config, 0);
    sections[1].put_u32_le(shard.shard);
    sections[1].put_u32_le(shard.count);
    sections[2].put_u32_le(shard.profiles.len() as u32);
    for p in &shard.profiles {
        persist::put_profile(&mut sections[2], p);
    }
    sections[3].put_u32_le(shard.signatures.len() as u32);
    for (c, sig) in &shard.signatures {
        sections[3].put_u32_le(c.0);
        persist::put_signature(&mut sections[3], sig);
    }
    persist::put_keyword(&mut sections[4], &shard.keyword);
    sections[5].put_u32_le(shard.col_table.len() as u32);
    for t in &shard.col_table {
        sections[5].put_u32_le(t.0);
    }
    sections[5].put_u64_le(shard.edges.len() as u64);
    for e in &shard.edges {
        sections[5].put_u32_le(e.a.0);
        sections[5].put_u32_le(e.b.0);
        sections[5].put_f32_le(e.score);
    }
    persist::frame_sections(MAGIC_SHARD, &sections)
}

/// Deserialise a shard written by [`shard_to_bytes`]. Validation mirrors
/// the full-index decoder: checksums first, then bounds-checked parsing,
/// then structural checks (shard id in range, owned ids strictly
/// increasing and actually owned under [`shard_of_table`], signatures
/// aligned with profiles, postings and edges within the column table).
pub fn shard_from_bytes(data: &[u8]) -> Result<IndexShard> {
    let payloads = persist::read_framed_sections(data, MAGIC_SHARD, &SHARD_SECTIONS)?;
    let section = |i: usize| persist::Cursor::new(payloads[i]);
    let done = |cur: &persist::Cursor<'_>, name: &str| -> Result<()> {
        if cur.is_empty() {
            Ok(())
        } else {
            Err(VerError::Serde(format!("trailing bytes in {name} section")))
        }
    };

    let mut cur = section(0);
    let config = persist::read_config(&mut cur)?;
    done(&cur, "config")?;

    let mut cur = section(1);
    let shard = cur.u32("shard id")?;
    let count = cur.u32("shard count")?;
    done(&cur, "shard")?;
    if count == 0 || shard >= count {
        return Err(VerError::Serde(format!(
            "shard id {shard} out of range for {count} shards"
        )));
    }

    let mut cur = section(5);
    let ncols = cur.len(4, "column table")?;
    let mut col_table = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        col_table.push(TableId(cur.u32("column table")?));
    }
    let nedges = cur.u64("edge count")? as usize;
    let mut edges = Vec::with_capacity(nedges.min(1 << 20));
    for _ in 0..nedges {
        let a = ColumnId(cur.u32("edge")?);
        let b = ColumnId(cur.u32("edge")?);
        let score = cur.f32("edge")?;
        if a.idx() >= ncols || b.idx() >= ncols || a == b {
            return Err(VerError::Serde(format!("invalid shard edge {a:?}-{b:?}")));
        }
        edges.push(JoinableEdge { a, b, score });
    }
    done(&cur, "hypergraph")?;

    let owned = |c: ColumnId| shard_of_table(col_table[c.idx()], count as usize) == shard as usize;

    let mut cur = section(2);
    let nprofiles = cur.len(34, "shard profile table")?;
    let mut profiles: Vec<ColumnProfile> = Vec::with_capacity(nprofiles);
    for _ in 0..nprofiles {
        let p = persist::read_profile(&mut cur)?;
        if p.id.idx() >= ncols || !owned(p.id) {
            return Err(VerError::Serde(format!(
                "profile {:?} is not owned by shard {shard}/{count}",
                p.id
            )));
        }
        if profiles.last().is_some_and(|prev| prev.id >= p.id) {
            return Err(VerError::Serde(format!(
                "shard profile ids not strictly increasing at {:?}",
                p.id
            )));
        }
        profiles.push(p);
    }
    done(&cur, "profiles")?;

    let mut cur = section(3);
    let nsigs = cur.len(16, "shard signature table")?;
    if nsigs != profiles.len() {
        return Err(VerError::Serde(format!(
            "shard holds {nsigs} signatures but {} profiles",
            profiles.len()
        )));
    }
    let mut signatures = Vec::with_capacity(nsigs);
    for p in &profiles {
        let c = ColumnId(cur.u32("signature column")?);
        if c != p.id {
            return Err(VerError::Serde(format!(
                "signature column {c:?} misaligned with profile {:?}",
                p.id
            )));
        }
        signatures.push((c, persist::read_signature(&mut cur, config.minhash_k)?));
    }
    done(&cur, "signatures")?;

    let mut cur = section(4);
    let keyword = persist::read_keyword(&mut cur, ncols)?;
    done(&cur, "keyword")?;

    Ok(IndexShard {
        config,
        shard,
        count,
        col_table,
        profiles,
        signatures,
        keyword,
        edges,
    })
}

/// Persist one shard (atomic temp-file + fsync + rename, same crash-safety
/// and fault-injection points as [`persist::save_index`]).
pub fn save_shard(shard: &IndexShard, path: &std::path::Path) -> Result<()> {
    ver_common::fault::hit(ver_common::fault::points::PERSIST_SAVE)?;
    let mut bytes = shard_to_bytes(shard).to_vec();
    ver_common::fault::corrupt_bytes(ver_common::fault::points::PERSIST_BYTES, &mut bytes);
    persist::atomic_write(path, &bytes)
}

/// Load one shard from a file written by [`save_shard`].
pub fn load_shard(path: &std::path::Path) -> Result<IndexShard> {
    ver_common::fault::hit(ver_common::fault::points::PERSIST_LOAD)?;
    let data = std::fs::read(path)?;
    shard_from_bytes(&data)
}

/// Canonical file name of shard `shard` in a set of `count`.
pub fn shard_file_name(shard: usize, count: usize) -> String {
    format!("shard-{shard}-of-{count}.versh")
}

/// Partition `index` into `shard_count` shards and persist each under
/// `dir` with its [`shard_file_name`]. Returns the written paths.
pub fn save_sharded_index(
    index: &DiscoveryIndex,
    shard_count: usize,
    dir: &std::path::Path,
) -> Result<Vec<std::path::PathBuf>> {
    let shards = partition_index(index, shard_count);
    let mut paths = Vec::with_capacity(shards.len());
    for s in &shards {
        let path = dir.join(shard_file_name(s.shard(), s.shard_count()));
        save_shard(s, &path)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Load a complete shard set (written by [`save_sharded_index`]) from
/// `dir` and merge it back into the logical index.
pub fn load_sharded_index(dir: &std::path::Path, shard_count: usize) -> Result<DiscoveryIndex> {
    let mut shards = Vec::with_capacity(shard_count);
    for i in 0..shard_count {
        shards.push(load_shard(&dir.join(shard_file_name(i, shard_count)))?);
    }
    merge_shards(&shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_index;
    use ver_common::value::Value;
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    /// Joinable tables plus numeric/null columns, enough tables that every
    /// shard count under test owns at least one.
    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..50).map(|i| format!("state_{i}")).collect();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().take(40).enumerate() {
            b.push_row(vec![
                Value::text(format!("A{i:03}")),
                Value::text(s.clone()),
            ])
            .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("states", &["name", "pop"]);
        for (i, s) in states.iter().enumerate() {
            let pop = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(1000 + i as i64)
            };
            b.push_row(vec![Value::text(s.clone()), pop]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("codes", &["iata", "city"]);
        for i in 0..30 {
            b.push_row(vec![
                Value::text(format!("A{i:03}")),
                Value::text(format!("city_{i}")),
            ])
            .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("census", &["name", "year"]);
        for (i, s) in states.iter().take(35).enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1990 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    fn index() -> DiscoveryIndex {
        build_index(
            &catalog(),
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for count in 1..8usize {
            for t in 0..200u32 {
                let s = shard_of_table(TableId(t), count);
                assert!(s < count);
                assert_eq!(s, shard_of_table(TableId(t), count), "deterministic");
            }
        }
        // Not everything lands on one shard for a small catalog.
        let hits: std::collections::HashSet<usize> =
            (0..16u32).map(|t| shard_of_table(TableId(t), 4)).collect();
        assert!(hits.len() > 1, "hash must scatter small table ids");
    }

    #[test]
    fn partition_then_merge_reconstructs_the_index_exactly() {
        let idx = index();
        for count in [1usize, 2, 3, 4, 7] {
            let shards = partition_index(&idx, count);
            assert_eq!(shards.len(), count);
            let total: usize = shards.iter().map(|s| s.owned_columns()).sum();
            assert_eq!(total, idx.profiles().len(), "columns partition exactly");
            let merged = merge_shards(&shards).unwrap();
            assert!(
                merged.same_contents(&idx),
                "merge of {count} shards diverged from the unsharded index"
            );
        }
    }

    #[test]
    fn merge_order_does_not_matter() {
        let idx = index();
        let mut shards = partition_index(&idx, 3);
        shards.reverse();
        assert!(merge_shards(&shards).unwrap().same_contents(&idx));
    }

    #[test]
    fn incomplete_or_inconsistent_shard_sets_are_rejected() {
        let idx = index();
        let shards = partition_index(&idx, 3);
        assert!(merge_shards(&[]).is_err(), "empty set");
        assert!(merge_shards(&shards[..2]).is_err(), "missing shard");
        let dup = vec![shards[0].clone(), shards[0].clone(), shards[1].clone()];
        assert!(merge_shards(&dup).is_err(), "duplicate shard id");
        let mixed = vec![
            shards[0].clone(),
            shards[1].clone(),
            partition_index(&idx, 2)[1].clone(),
        ];
        assert!(merge_shards(&mixed).is_err(), "mixed shard counts");
    }

    #[test]
    fn shard_bytes_roundtrip_exactly() {
        let idx = index();
        for s in partition_index(&idx, 2) {
            let bytes = shard_to_bytes(&s);
            assert_eq!(&bytes[..8], MAGIC_SHARD);
            let back = shard_from_bytes(&bytes).unwrap();
            assert!(back.same_contents(&s), "shard {} diverged", s.shard());
            // Canonical: re-encoding the decoded shard is byte-identical.
            assert_eq!(shard_to_bytes(&back).to_vec(), bytes.to_vec());
        }
    }

    #[test]
    fn corrupt_shard_artifacts_are_rejected() {
        let idx = index();
        let bytes = shard_to_bytes(&partition_index(&idx, 2)[0]).to_vec();
        // Any single flipped bit fails the checksummed load with Serde.
        for frac in 0..24 {
            let off = (bytes.len() - 1) * frac / 23;
            let mut bad = bytes.clone();
            bad[off] ^= 0x08;
            assert!(
                matches!(shard_from_bytes(&bad), Err(VerError::Serde(_))),
                "flip at {off} must fail"
            );
        }
        // A full-index artifact is not a shard.
        assert!(shard_from_bytes(&persist::index_to_bytes(&idx)).is_err());
        // Truncations fail, never panic.
        for frac in 1..12 {
            let cut = bytes.len() * frac / 12;
            assert!(shard_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn sharded_file_roundtrip_and_warm_start_contract() {
        let dir = std::env::temp_dir().join(format!("ver_shard_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let idx = index();
        let paths = save_sharded_index(&idx, 3, &dir).unwrap();
        assert_eq!(paths.len(), 3);
        let merged = load_sharded_index(&dir, 3).unwrap();
        assert!(merged.same_contents(&idx), "sharded warm start diverged");
        // A wrong count does not find a complete set.
        assert!(load_sharded_index(&dir, 4).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
