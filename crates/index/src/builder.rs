//! Offline discovery-index construction (the DISCOVERY ENGINE's build pass).
//!
//! Builds, over a [`TableCatalog`]:
//! 1. per-column profiles (exact cardinalities),
//! 2. MinHash signatures (parallelised across columns with crossbeam scoped
//!    threads — index construction is the offline, embarrassingly parallel
//!    stage),
//! 3. keyword indexes over values / attribute names / table names,
//! 4. the join hypergraph: LSH candidate pairs filtered by estimated (or
//!    optionally exact) containment at `containment_threshold`.

use crate::engine::DiscoveryIndex;
use crate::hypergraph::JoinHypergraph;
use crate::lsh::LshIndex;
use crate::minhash::{estimated_containment, exact_containment, MinHashSignature, MinHasher};
use crate::valueindex::KeywordIndex;
use ver_common::error::Result;
use ver_common::fxhash::FxHashSet;
use ver_common::ids::ColumnId;
use ver_common::value::DataType;
use ver_store::catalog::TableCatalog;
use ver_store::profile::{profile_catalog, ColumnProfile};

/// Tunables for index construction.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// MinHash functions per signature.
    pub minhash_k: usize,
    /// Containment threshold for hypergraph edges (paper/Aurum default 0.8;
    /// Fig. 8a sweeps 0.8 → 0.5 by rebuilding).
    pub containment_threshold: f64,
    /// Verify LSH candidates with exact containment instead of the estimate.
    /// Slower but eliminates estimation error (used by small corpora).
    pub verify_exact: bool,
    /// Distinct-value sample cap per column profile.
    pub sample_cap: usize,
    /// Threads for signature computation (1 = sequential).
    pub threads: usize,
    /// Seed for the MinHash family.
    pub seed: u64,
    /// Skip indexing values of columns with more distinct values than this
    /// (guards the keyword index against enormous key columns).
    pub value_index_cap: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            minhash_k: 128,
            containment_threshold: 0.8,
            verify_exact: false,
            sample_cap: 64,
            threads: 4,
            seed: 0x5eed,
            value_index_cap: 1_000_000,
        }
    }
}

/// Build the discovery index for `catalog`.
pub fn build_index(catalog: &TableCatalog, config: IndexConfig) -> Result<DiscoveryIndex> {
    let profiles = profile_catalog(catalog, config.sample_cap);
    let hasher = MinHasher::new(config.minhash_k, config.seed);
    let signatures = compute_signatures(catalog, &hasher, config.threads.max(1));
    let keyword = build_keyword_index(catalog, &config);
    let hypergraph = build_hypergraph(catalog, &profiles, &signatures, &config);
    Ok(DiscoveryIndex::assemble(
        config, profiles, hasher, signatures, keyword, hypergraph,
    ))
}

/// Compute all column signatures, in parallel when `threads > 1`.
fn compute_signatures(
    catalog: &TableCatalog,
    hasher: &MinHasher,
    threads: usize,
) -> Vec<MinHashSignature> {
    let crefs: Vec<_> = catalog.all_columns().collect();
    let n = crefs.len();
    if threads <= 1 || n < 64 {
        return crefs
            .iter()
            .map(|&(_, cref)| hasher.signature_of_column(catalog.column(cref).expect("valid ref")))
            .collect();
    }
    let mut out: Vec<Option<MinHashSignature>> = vec![None; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (slice, refs) in out.chunks_mut(chunk).zip(crefs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, &(_, cref)) in slice.iter_mut().zip(refs) {
                    *slot =
                        Some(hasher.signature_of_column(catalog.column(cref).expect("valid ref")));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

fn build_keyword_index(catalog: &TableCatalog, config: &IndexConfig) -> KeywordIndex {
    let mut idx = KeywordIndex::new();
    for table in catalog.tables() {
        let cols: Vec<ColumnId> = (0..table.column_count())
            .map(|o| {
                catalog
                    .column_id(ver_common::ids::ColumnRef {
                        table: table.id,
                        ordinal: o as u16,
                    })
                    .expect("registered column")
            })
            .collect();
        idx.add_table(table.name(), table.id, cols.clone());
        for (ordinal, cid) in cols.iter().enumerate() {
            if let Some(name) = &table.schema.columns[ordinal].name {
                idx.add_attribute(name, *cid);
            }
            let col = table.column(ordinal).expect("ordinal in range");
            if col.distinct_count() > config.value_index_cap {
                continue;
            }
            let mut seen: FxHashSet<String> = FxHashSet::default();
            for v in col.non_null() {
                let n = v.normalized();
                if seen.insert(n.clone()) {
                    idx.add_value(&n, *cid);
                }
            }
        }
    }
    idx
}

fn build_hypergraph(
    catalog: &TableCatalog,
    profiles: &[ColumnProfile],
    signatures: &[MinHashSignature],
    config: &IndexConfig,
) -> JoinHypergraph {
    let col_table: Vec<_> = profiles.iter().map(|p| p.cref.table).collect();
    let mut graph = JoinHypergraph::new(col_table);

    // Containment-friendly banding: single-row bands (r = 1, b = k). A pair
    // with Jaccard similarity s collides with probability 1 − (1 − s)^k,
    // ≈ 1 for any s ≳ 3/k. High-containment pairs of asymmetric sizes have
    // *low similarity* (A ⊂ B with |B| ≫ |A| gives J ≈ |A|/|B|), so banding
    // tuned to the containment threshold would miss them — the problem LSH
    // Ensemble/Lazo address. False candidates are discarded by the
    // containment check below.
    let mut lsh = LshIndex::new(config.minhash_k, 1);
    for (i, sig) in signatures.iter().enumerate() {
        lsh.insert(ColumnId(i as u32), sig);
    }

    let mut checked: FxHashSet<(u32, u32)> = FxHashSet::default();
    for group in lsh.collision_groups() {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                let key = (a.0.min(b.0), a.0.max(b.0));
                if !checked.insert(key) {
                    continue;
                }
                if !compatible(&profiles[a.idx()], &profiles[b.idx()]) {
                    continue;
                }
                let score = if config.verify_exact {
                    let ca = catalog.column(profiles[a.idx()].cref).expect("valid");
                    let cb = catalog.column(profiles[b.idx()].cref).expect("valid");
                    exact_containment(ca, cb).max(exact_containment(cb, ca))
                } else {
                    let sa = &signatures[a.idx()];
                    let sb = &signatures[b.idx()];
                    estimated_containment(sa, sb).max(estimated_containment(sb, sa))
                };
                if score >= config.containment_threshold {
                    graph.add_edge(a, b, score as f32);
                }
            }
        }
    }
    graph.finalize();
    graph
}

/// Edge admissibility: different tables, same broad type family, both
/// non-empty. Joining text to numbers manufactures nonsense paths.
fn compatible(a: &ColumnProfile, b: &ColumnProfile) -> bool {
    if a.cref.table == b.cref.table || a.distinct == 0 || b.distinct == 0 {
        return false;
    }
    type_family(a.dtype) == type_family(b.dtype)
}

fn type_family(t: DataType) -> u8 {
    match t {
        DataType::Int | DataType::Float => 0,
        DataType::Text => 1,
        DataType::Unknown => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    /// Catalog where airports.state ⊆ states.name exactly, and a numeric
    /// column pair that should never link to text.
    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..60).map(|i| format!("state_{i}")).collect();

        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().take(50).enumerate() {
            b.push_row(vec![
                Value::text(format!("A{i:03}")),
                Value::text(s.clone()),
            ])
            .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("states", &["name", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    fn config() -> IndexConfig {
        IndexConfig {
            threads: 1,
            verify_exact: true,
            ..Default::default()
        }
    }

    #[test]
    fn builds_expected_join_edge() {
        let cat = catalog();
        let idx = build_index(&cat, config()).unwrap();
        // airports.state (C1) ⊆ states.name (C2), containment 1.0.
        let n = idx.hypergraph().neighbors(ColumnId(1), 0.8);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].0, ColumnId(2));
        assert!(n[0].1 > 0.99);
    }

    #[test]
    fn estimated_mode_finds_the_same_edge() {
        let cat = catalog();
        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let n = idx.hypergraph().neighbors(ColumnId(1), 0.8);
        assert!(n.iter().any(|(c, _)| *c == ColumnId(2)));
    }

    #[test]
    fn no_cross_type_edges() {
        let cat = catalog();
        let idx = build_index(&cat, config()).unwrap();
        for e in idx.hypergraph().edges() {
            let ta = idx.profile(e.a).dtype;
            let tb = idx.profile(e.b).dtype;
            assert_eq!(type_family(ta), type_family(tb));
        }
    }

    #[test]
    fn no_intra_table_edges() {
        let cat = catalog();
        let idx = build_index(&cat, config()).unwrap();
        for e in idx.hypergraph().edges() {
            assert_ne!(idx.profile(e.a).cref.table, idx.profile(e.b).cref.table);
        }
    }

    #[test]
    fn parallel_and_sequential_signatures_agree() {
        let cat = catalog();
        let h = MinHasher::new(64, 1);
        let seq = compute_signatures(&cat, &h, 1);
        let par = compute_signatures(&cat, &h, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn keyword_index_covers_values_and_attributes() {
        let cat = catalog();
        let idx = build_index(&cat, config()).unwrap();
        use crate::valueindex::{Fuzziness, SearchTarget};
        let hits = idx.search_keyword("state_7", SearchTarget::Values, Fuzziness::Exact);
        assert_eq!(
            hits.len(),
            2,
            "value occurs in airports.state and states.name"
        );
        let hits = idx.search_keyword("iata", SearchTarget::Attributes, Fuzziness::Exact);
        assert_eq!(hits, vec![ColumnId(0)]);
    }
}
