//! Offline discovery-index construction (the DISCOVERY ENGINE's build pass).
//!
//! Builds, over a [`TableCatalog`]:
//! 1. per-column profiles (exact cardinalities plus the sorted distinct-hash
//!    vector every later stage feeds from),
//! 2. MinHash signatures, sketched from the pre-hashed profile values,
//! 3. keyword indexes over values / attribute names / table names (built
//!    per-table, then merged),
//! 4. the join hypergraph: LSH candidate pairs deduplicated up front and
//!    verified by estimated (or optionally exact) containment at
//!    `containment_threshold`.
//!
//! Every stage runs on the work-stealing runtime in [`ver_common::pool`]
//! (`threads: 0` = one worker per hardware thread), which balances the
//! heavy-tailed column sizes of pathless collections better than the static
//! chunking used previously. All stages are order-preserving, so the built
//! index is **bit-identical across thread counts**.

use crate::engine::DiscoveryIndex;
use crate::hypergraph::JoinHypergraph;
use crate::lsh::LshIndex;
use crate::minhash::{
    estimated_containment_max, hashed_containment_max, MinHashSignature, MinHasher,
};
use crate::valueindex::KeywordIndex;
use ver_common::error::Result;
use ver_common::fxhash::FxHashSet;
use ver_common::ids::ColumnId;
use ver_common::pool::ThreadPool;
use ver_common::value::DataType;
use ver_store::catalog::TableCatalog;
use ver_store::profile::{profile_catalog_parallel, ColumnProfile};
use ver_store::table::Table;

/// Tunables for index construction.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// MinHash functions per signature.
    pub minhash_k: usize,
    /// Containment threshold for hypergraph edges (paper/Aurum default 0.8;
    /// Fig. 8a sweeps 0.8 → 0.5 by rebuilding).
    pub containment_threshold: f64,
    /// Verify LSH candidates with exact containment instead of the
    /// estimate. Slower but eliminates MinHash estimation error (used by
    /// small corpora). Verification compares the columns' 64-bit
    /// distinct-value hashes, so it is exact up to Fx-hash collisions
    /// (vanishingly rare on non-adversarial data); it also keeps the
    /// per-column hash vectors alive on the profiles, which estimated mode
    /// drops after sketching.
    pub verify_exact: bool,
    /// Distinct-value sample cap per column profile.
    pub sample_cap: usize,
    /// Worker threads for the offline build (`0` = one per available
    /// hardware thread, `1` = sequential; the default honours the
    /// `VER_THREADS` environment variable). The built index is identical
    /// for every value.
    pub threads: usize,
    /// Seed for the MinHash family.
    pub seed: u64,
    /// Skip indexing values of columns with more distinct values than this
    /// (guards the keyword index against enormous key columns).
    pub value_index_cap: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            minhash_k: 128,
            containment_threshold: 0.8,
            verify_exact: false,
            sample_cap: 64,
            threads: ver_common::pool::default_threads(),
            seed: 0x5eed,
            value_index_cap: 1_000_000,
        }
    }
}

/// Build the discovery index for `catalog`.
pub fn build_index(catalog: &TableCatalog, config: IndexConfig) -> Result<DiscoveryIndex> {
    let pool = ThreadPool::new(config.threads);
    let mut profiles = profile_catalog_parallel(catalog, config.sample_cap, pool.threads());
    let hasher = MinHasher::new(config.minhash_k, config.seed);
    let signatures = compute_signatures(&profiles, &hasher, &pool);
    if !config.verify_exact {
        // In estimated mode the stored hash vectors are only consumed by
        // sketching, which just finished — drop them now, before the
        // keyword and hypergraph stages run, rather than keep ~8 bytes per
        // distinct value alive (Open-Data-scale corpora have millions of
        // columns, and profiles were designed around the `sample_cap`
        // memory bound). `verify_exact` deployments keep them: they are
        // the containment verifier's input below and remain available for
        // re-verification.
        for p in &mut profiles {
            p.hashes = Vec::new();
        }
    }
    let keyword = build_keyword_index(catalog, &config, &pool);
    let hypergraph = build_hypergraph(&profiles, &signatures, &config, &pool);
    Ok(DiscoveryIndex::assemble(
        config, profiles, hasher, signatures, keyword, hypergraph,
    ))
}

/// Sketch every column from its profile's pre-hashed distinct set — no
/// re-hashing of values, no per-column set clones. Output is in `ColumnId`
/// order for any worker count.
fn compute_signatures(
    profiles: &[ColumnProfile],
    hasher: &MinHasher,
    pool: &ThreadPool,
) -> Vec<MinHashSignature> {
    pool.par_map(profiles, |p| {
        hasher.signature_of_hash_slice(&p.hashes, p.distinct)
    })
}

/// Keyword indexes are built per table on the pool, then merged in table
/// order — giving exactly the postings the sequential build produces.
fn build_keyword_index(
    catalog: &TableCatalog,
    config: &IndexConfig,
    pool: &ThreadPool,
) -> KeywordIndex {
    let partials = pool.par_map(catalog.tables(), |table| {
        keyword_index_of_table(catalog, table, config)
    });
    let mut idx = KeywordIndex::new();
    for partial in partials {
        idx.merge(partial);
    }
    idx
}

/// One table's contribution to the keyword index.
fn keyword_index_of_table(
    catalog: &TableCatalog,
    table: &Table,
    config: &IndexConfig,
) -> KeywordIndex {
    let mut idx = KeywordIndex::new();
    let cols: Vec<ColumnId> = (0..table.column_count())
        .map(|o| {
            catalog
                .column_id(ver_common::ids::ColumnRef {
                    table: table.id,
                    ordinal: o as u16,
                })
                .expect("registered column")
        })
        .collect();
    idx.add_table(table.name(), table.id, cols.clone());
    for (ordinal, cid) in cols.iter().enumerate() {
        if let Some(name) = &table.schema.columns[ordinal].name {
            idx.add_attribute(name, *cid);
        }
        let col = table.column(ordinal).expect("ordinal in range");
        if col.distinct_count() > config.value_index_cap {
            continue;
        }
        // One column is scanned at a time, so the posting list's tail entry
        // already tells us whether *this* column saw the value — no
        // side-table of seen strings, no clone per cell.
        for v in col.non_null() {
            idx.add_value_owned(v.normalized(), *cid);
        }
    }
    idx
}

/// Candidate pairs are collected from the LSH buckets, deduplicated and
/// canonically ordered **first**; verification — the dominant cost of the
/// offline pass — then fans out over the pool. Scores depend only on the
/// pair, so edge insertion in pair order is deterministic for any worker
/// count.
fn build_hypergraph(
    profiles: &[ColumnProfile],
    signatures: &[MinHashSignature],
    config: &IndexConfig,
    pool: &ThreadPool,
) -> JoinHypergraph {
    let col_table: Vec<_> = profiles.iter().map(|p| p.cref.table).collect();
    let mut graph = JoinHypergraph::new(col_table);

    // Containment-friendly banding: single-row bands (r = 1, b = k). A pair
    // with Jaccard similarity s collides with probability 1 − (1 − s)^k,
    // ≈ 1 for any s ≳ 3/k. High-containment pairs of asymmetric sizes have
    // *low similarity* (A ⊂ B with |B| ≫ |A| gives J ≈ |A|/|B|), so banding
    // tuned to the containment threshold would miss them — the problem LSH
    // Ensemble/Lazo address. False candidates are discarded by the
    // containment check below.
    let mut lsh = LshIndex::new(config.minhash_k, 1);
    lsh.insert_signatures(signatures, pool);

    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for group in lsh.collision_groups() {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                let key = (a.0.min(b.0), a.0.max(b.0));
                if seen.insert(key)
                    && compatible(&profiles[key.0 as usize], &profiles[key.1 as usize])
                {
                    pairs.push(key);
                }
            }
        }
    }
    // Canonical order: makes edge-list construction independent of LSH
    // bucket iteration and of how verification was scheduled.
    pairs.sort_unstable();

    let scores = pool.par_map(&pairs, |&(a, b)| {
        // Symmetric-max scoring shares one intersection/agreement count per
        // pair (bit-identical to taking the max of both directions).
        if config.verify_exact {
            let (ha, hb) = (
                profiles[a as usize].hashes.as_slice(),
                profiles[b as usize].hashes.as_slice(),
            );
            hashed_containment_max(ha, hb)
        } else {
            let (sa, sb) = (&signatures[a as usize], &signatures[b as usize]);
            estimated_containment_max(sa, sb)
        }
    });
    for (&(a, b), &score) in pairs.iter().zip(&scores) {
        if score >= config.containment_threshold {
            graph.add_edge(ColumnId(a), ColumnId(b), score as f32);
        }
    }
    graph.finalize();
    graph
}

/// Edge admissibility: different tables, same broad type family, both
/// non-empty. Joining text to numbers manufactures nonsense paths.
fn compatible(a: &ColumnProfile, b: &ColumnProfile) -> bool {
    if a.cref.table == b.cref.table || a.distinct == 0 || b.distinct == 0 {
        return false;
    }
    type_family(a.dtype) == type_family(b.dtype)
}

fn type_family(t: DataType) -> u8 {
    match t {
        DataType::Int | DataType::Float => 0,
        DataType::Text => 1,
        DataType::Unknown => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    /// Catalog where airports.state ⊆ states.name exactly, and a numeric
    /// column pair that should never link to text.
    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..60).map(|i| format!("state_{i}")).collect();

        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().take(50).enumerate() {
            b.push_row(vec![
                Value::text(format!("A{i:03}")),
                Value::text(s.clone()),
            ])
            .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("states", &["name", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    fn config() -> IndexConfig {
        IndexConfig {
            threads: 1,
            verify_exact: true,
            ..Default::default()
        }
    }

    #[test]
    fn builds_expected_join_edge() {
        let cat = catalog();
        let idx = build_index(&cat, config()).unwrap();
        // airports.state (C1) ⊆ states.name (C2), containment 1.0.
        let n = idx.hypergraph().neighbors(ColumnId(1), 0.8);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].0, ColumnId(2));
        assert!(n[0].1 > 0.99);
    }

    #[test]
    fn estimated_mode_finds_the_same_edge() {
        let cat = catalog();
        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let n = idx.hypergraph().neighbors(ColumnId(1), 0.8);
        assert!(n.iter().any(|(c, _)| *c == ColumnId(2)));
    }

    #[test]
    fn no_cross_type_edges() {
        let cat = catalog();
        let idx = build_index(&cat, config()).unwrap();
        for e in idx.hypergraph().edges() {
            let ta = idx.profile(e.a).dtype;
            let tb = idx.profile(e.b).dtype;
            assert_eq!(type_family(ta), type_family(tb));
        }
    }

    #[test]
    fn no_intra_table_edges() {
        let cat = catalog();
        let idx = build_index(&cat, config()).unwrap();
        for e in idx.hypergraph().edges() {
            assert_ne!(idx.profile(e.a).cref.table, idx.profile(e.b).cref.table);
        }
    }

    #[test]
    fn parallel_and_sequential_signatures_agree() {
        let cat = catalog();
        let h = MinHasher::new(64, 1);
        let profiles = profile_catalog_parallel(&cat, 64, 1);
        let seq = compute_signatures(&profiles, &h, &ThreadPool::new(1));
        let par = compute_signatures(&profiles, &h, &ThreadPool::new(4));
        assert_eq!(seq, par);
        // And they match direct column sketching (pre-hash fidelity).
        let direct: Vec<MinHashSignature> = cat
            .all_columns()
            .map(|(_, cref)| h.signature_of_column(cat.column(cref).unwrap()))
            .collect();
        assert_eq!(seq, direct);
    }

    #[test]
    fn keyword_index_covers_values_and_attributes() {
        let cat = catalog();
        let idx = build_index(&cat, config()).unwrap();
        use crate::valueindex::{Fuzziness, SearchTarget};
        let hits = idx.search_keyword("state_7", SearchTarget::Values, Fuzziness::Exact);
        assert_eq!(
            hits.len(),
            2,
            "value occurs in airports.state and states.name"
        );
        let hits = idx.search_keyword("iata", SearchTarget::Attributes, Fuzziness::Exact);
        assert_eq!(hits, vec![ColumnId(0)]);
    }

    #[test]
    fn thread_counts_build_identical_indexes() {
        let cat = catalog();
        for verify_exact in [false, true] {
            let base = IndexConfig {
                verify_exact,
                ..Default::default()
            };
            let one = build_index(
                &cat,
                IndexConfig {
                    threads: 1,
                    ..base.clone()
                },
            )
            .unwrap();
            for threads in [0, 3, 8] {
                let many = build_index(
                    &cat,
                    IndexConfig {
                        threads,
                        ..base.clone()
                    },
                )
                .unwrap();
                assert!(
                    one.same_contents(&many),
                    "threads={threads} verify_exact={verify_exact} diverged"
                );
            }
        }
    }
}
