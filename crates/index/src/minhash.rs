//! MinHash signatures and Lazo-style containment estimation.
//!
//! Pathless collections have no PK/FK metadata, so join paths are
//! approximated by *inclusion dependencies* (Challenge 2). Computing exact
//! containment between all column pairs is quadratic in both columns and
//! values; Aurum/Lazo instead sketch each column with a k-MinHash signature
//! and estimate Jaccard *similarity* from signature agreement. Lazo's
//! insight (citation 13 of the paper) is that with exact cardinalities
//! stored per column, similarity converts to an *intersection* estimate
//!
//! ```text
//! |X ∩ Y| ≈ J/(1+J) · (|X| + |Y|)
//! ```
//!
//! and thence to containment `C(X ⊆ Y) = |X ∩ Y| / |X|` — the quantity the
//! join-path hypergraph thresholds on.

use serde::{Deserialize, Serialize};
use ver_common::fxhash::mix64;
use ver_store::column::Column;

/// Number of hash functions used when none is configured.
pub const DEFAULT_K: usize = 128;

/// A k-MinHash signature plus the column's exact distinct cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashSignature {
    /// Per-hash-function minima. `u64::MAX` slots mean "no values seen".
    pub sig: Vec<u64>,
    /// Exact distinct count of the sketched set (Lazo needs this).
    pub cardinality: usize,
}

impl MinHashSignature {
    /// `true` when the sketched set was empty.
    pub fn is_empty(&self) -> bool {
        self.cardinality == 0
    }
}

/// Factory for signatures sharing one family of k hash functions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

impl MinHasher {
    /// A family of `k` hash functions derived from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "minhash needs at least one hash function");
        MinHasher {
            seeds: (0..k as u64)
                .map(|i| mix64(seed ^ i.wrapping_mul(GOLDEN)))
                .collect(),
        }
    }

    /// Number of hash functions (`k`).
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Sketch an iterator of pre-hashed set elements.
    ///
    /// `cardinality` must be the exact distinct count of the underlying set
    /// (duplicated elements in the iterator are harmless for the minima).
    pub fn signature_of_hashes(
        &self,
        hashes: impl Iterator<Item = u64>,
        cardinality: usize,
    ) -> MinHashSignature {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        for h in hashes {
            for (slot, &seed) in sig.iter_mut().zip(&self.seeds) {
                let v = mix64(h ^ seed);
                if v < *slot {
                    *slot = v;
                }
            }
        }
        MinHashSignature { sig, cardinality }
    }

    /// Sketch a column's distinct non-null value set.
    ///
    /// Sketches from the column's pre-hashed distinct set
    /// ([`Column::distinct_hashes`]); the offline builder goes one step
    /// further and reuses the hash vector already stored on the column's
    /// profile via [`MinHasher::signature_of_hashes`].
    pub fn signature_of_column(&self, col: &Column) -> MinHashSignature {
        self.signature_of_hashes(col.distinct_hashes().into_iter(), col.distinct_count())
    }
}

/// Count of common elements between two **sorted, deduplicated** hash
/// vectors — a single linear merge, no set construction.
fn merge_intersection(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Exact containment `|A ∩ B| / |A|` over pre-hashed distinct sets (sorted,
/// deduplicated, as produced by [`Column::distinct_hashes`] and stored on
/// column profiles). This is what `verify_exact` hypergraph construction
/// runs per LSH candidate pair: a linear merge instead of two fresh
/// `FxHashSet<Value>` clones per call.
///
/// "Exact" means exact over the 64-bit hash images: two distinct values
/// whose Fx hashes collide would count as one. That is a ~`n²/2⁶⁴`
/// per-column event — negligible against the MinHash estimation error this
/// mode exists to remove — but it is not cryptographically guaranteed.
pub fn hashed_containment(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    merge_intersection(a, b) as f64 / a.len() as f64
}

/// Exact Jaccard similarity over pre-hashed distinct sets (see
/// [`hashed_containment`] for the input contract).
pub fn hashed_jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = merge_intersection(a, b);
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Estimated Jaccard similarity from two signatures (same family, same k).
pub fn estimated_jaccard(a: &MinHashSignature, b: &MinHashSignature) -> f64 {
    debug_assert_eq!(
        a.sig.len(),
        b.sig.len(),
        "signatures from different families"
    );
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let matches = a.sig.iter().zip(&b.sig).filter(|(x, y)| x == y).count();
    matches as f64 / a.sig.len() as f64
}

/// Lazo estimate of `|A ∩ B|` from the similarity estimate and exact
/// cardinalities.
pub fn estimated_intersection(a: &MinHashSignature, b: &MinHashSignature) -> f64 {
    let j = estimated_jaccard(a, b);
    let est = j / (1.0 + j) * (a.cardinality + b.cardinality) as f64;
    // Intersection cannot exceed either set.
    est.min(a.cardinality as f64).min(b.cardinality as f64)
}

/// Estimated containment `C(A ⊆ B) = |A ∩ B| / |A|` in `[0, 1]`.
pub fn estimated_containment(a: &MinHashSignature, b: &MinHashSignature) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    (estimated_intersection(a, b) / a.cardinality as f64).clamp(0.0, 1.0)
}

/// Exact Jaccard containment `|A ∩ B| / |A|` between two columns' distinct
/// value sets. Convenience wrapper over [`hashed_containment`] for tests
/// and ground-truth tooling (same hash-collision caveat); hot paths pass
/// stored hash vectors directly.
pub fn exact_containment(a: &Column, b: &Column) -> f64 {
    hashed_containment(&a.distinct_hashes(), &b.distinct_hashes())
}

/// Exact Jaccard similarity between two columns' distinct value sets
/// (wrapper over [`hashed_jaccard`], same contract as
/// [`exact_containment`]).
pub fn exact_jaccard(a: &Column, b: &Column) -> f64 {
    hashed_jaccard(&a.distinct_hashes(), &b.distinct_hashes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;

    fn col(range: std::ops::Range<i64>) -> Column {
        range.map(Value::Int).collect()
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let h = MinHasher::new(64, 7);
        let a = h.signature_of_column(&col(0..100));
        let b = h.signature_of_column(&col(0..100));
        assert_eq!(estimated_jaccard(&a, &b), 1.0);
        assert!((estimated_containment(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(128, 7);
        let a = h.signature_of_column(&col(0..200));
        let b = h.signature_of_column(&col(10_000..10_200));
        assert!(estimated_jaccard(&a, &b) < 0.05);
        assert!(estimated_containment(&a, &b) < 0.1);
    }

    #[test]
    fn half_overlap_estimates_track_truth() {
        // |A|=200, |B|=200, |A∩B|=100 → J = 100/300 ≈ 0.333, C(A⊆B)=0.5.
        let h = MinHasher::new(256, 42);
        let a = h.signature_of_column(&col(0..200));
        let b = h.signature_of_column(&col(100..300));
        let j = estimated_jaccard(&a, &b);
        assert!((j - 1.0 / 3.0).abs() < 0.12, "jaccard estimate {j}");
        let c = estimated_containment(&a, &b);
        assert!((c - 0.5).abs() < 0.15, "containment estimate {c}");
    }

    #[test]
    fn subset_containment_is_high() {
        // A ⊂ B with |A|=50, |B|=500 → C(A⊆B)=1.0, J≈0.1.
        let h = MinHasher::new(256, 3);
        let a = h.signature_of_column(&col(0..50));
        let b = h.signature_of_column(&col(0..500));
        let c = estimated_containment(&a, &b);
        assert!(c > 0.75, "containment of subset should be near 1, got {c}");
        // Asymmetry: B is mostly not inside A.
        let c_rev = estimated_containment(&b, &a);
        assert!(
            c_rev < 0.35,
            "reverse containment should be ~0.1, got {c_rev}"
        );
    }

    #[test]
    fn empty_columns_behave() {
        let h = MinHasher::new(32, 1);
        let e = h.signature_of_column(&Column::new());
        let a = h.signature_of_column(&col(0..10));
        assert!(e.is_empty());
        assert_eq!(estimated_jaccard(&e, &e), 1.0);
        assert_eq!(estimated_jaccard(&e, &a), 0.0);
        assert_eq!(estimated_containment(&e, &a), 0.0);
    }

    #[test]
    fn exact_measures_ground_truth() {
        let a = col(0..100);
        let b = col(50..150);
        assert!((exact_containment(&a, &b) - 0.5).abs() < 1e-12);
        assert!((exact_jaccard(&a, &b) - 50.0 / 150.0).abs() < 1e-12);
        assert_eq!(exact_containment(&Column::new(), &a), 0.0);
        assert_eq!(exact_jaccard(&Column::new(), &Column::new()), 1.0);
    }

    #[test]
    fn hashed_measures_agree_with_column_measures() {
        let a = col(0..100);
        let b = col(50..150);
        let (ha, hb) = (a.distinct_hashes(), b.distinct_hashes());
        assert!((hashed_containment(&ha, &hb) - exact_containment(&a, &b)).abs() < 1e-12);
        assert!((hashed_jaccard(&ha, &hb) - exact_jaccard(&a, &b)).abs() < 1e-12);
        assert_eq!(hashed_containment(&[], &ha), 0.0);
        assert_eq!(hashed_jaccard(&[], &[]), 1.0);
        assert_eq!(hashed_jaccard(&[], &ha), 0.0);
    }

    #[test]
    fn signature_from_stored_hashes_matches_signature_of_column() {
        // The builder feeds sketches from profile-stored hash vectors; they
        // must be bit-identical to sketching the column directly.
        let h = MinHasher::new(64, 21);
        let c = col(0..300);
        let from_col = h.signature_of_column(&c);
        let hashes = c.distinct_hashes();
        let from_hashes = h.signature_of_hashes(hashes.iter().copied(), c.distinct_count());
        assert_eq!(from_col, from_hashes);
    }

    #[test]
    fn signature_ignores_duplicates_and_nulls() {
        let h = MinHasher::new(64, 9);
        let with_dups = Column::from_values(vec![
            Value::Int(1),
            Value::Int(1),
            Value::Null,
            Value::Int(2),
        ]);
        let clean = Column::from_values(vec![Value::Int(1), Value::Int(2)]);
        let a = h.signature_of_column(&with_dups);
        let b = h.signature_of_column(&clean);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_families() {
        let h1 = MinHasher::new(16, 1);
        let h2 = MinHasher::new(16, 2);
        let c = col(0..50);
        assert_ne!(
            h1.signature_of_column(&c).sig,
            h2.signature_of_column(&c).sig
        );
    }
}
