//! MinHash signatures and Lazo-style containment estimation.
//!
//! Pathless collections have no PK/FK metadata, so join paths are
//! approximated by *inclusion dependencies* (Challenge 2). Computing exact
//! containment between all column pairs is quadratic in both columns and
//! values; Aurum/Lazo instead sketch each column with a k-MinHash signature
//! and estimate Jaccard *similarity* from signature agreement. Lazo's
//! insight (citation 13 of the paper) is that with exact cardinalities
//! stored per column, similarity converts to an *intersection* estimate
//!
//! ```text
//! |X ∩ Y| ≈ J/(1+J) · (|X| + |Y|)
//! ```
//!
//! and thence to containment `C(X ⊆ Y) = |X ∩ Y| / |X|` — the quantity the
//! join-path hypergraph thresholds on.
//!
//! The sketch kernel is vectorized: [`MinHasher::signature_of_hash_slice`]
//! streams values in cache-sized batches and updates eight seed lanes at a
//! time with branchless minima ([`ver_common::simd`]), dispatched at runtime
//! (AVX-512/AVX2/NEON when detected, `VER_SIMD=0` forces the scalar
//! reference).
//! MinHash minima are order- and batching-independent, so the blocked kernel
//! is **bit-identical** to [`MinHasher::signature_of_hashes_scalar`] — the
//! determinism invariant the equivalence suite and golden snapshots pin.

use serde::{Deserialize, Serialize};
use ver_common::fxhash::mix64;
use ver_common::simd::{self, mix64x8, U64x8, LANES};
use ver_common::simd_multiversion;
use ver_store::column::Column;

/// Number of hash functions used when none is configured.
pub const DEFAULT_K: usize = 128;

/// A k-MinHash signature plus the column's exact distinct cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashSignature {
    /// Per-hash-function minima. `u64::MAX` slots mean "no values seen".
    pub sig: Vec<u64>,
    /// Exact distinct count of the sketched set (Lazo needs this).
    pub cardinality: usize,
}

impl MinHashSignature {
    /// `true` when the sketched set was empty.
    pub fn is_empty(&self) -> bool {
        self.cardinality == 0
    }
}

/// Factory for signatures sharing one family of k hash functions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

impl MinHasher {
    /// A family of `k` hash functions derived from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "minhash needs at least one hash function");
        MinHasher {
            seeds: (0..k as u64)
                .map(|i| mix64(seed ^ i.wrapping_mul(GOLDEN)))
                .collect(),
        }
    }

    /// Number of hash functions (`k`).
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Sketch an iterator of pre-hashed set elements.
    ///
    /// `cardinality` must be the exact distinct count of the underlying set
    /// (duplicated elements in the iterator are harmless for the minima).
    /// Runs the scalar reference kernel — callers holding a slice should
    /// prefer [`MinHasher::signature_of_hash_slice`], which vectorizes and
    /// produces bit-identical output.
    pub fn signature_of_hashes(
        &self,
        hashes: impl Iterator<Item = u64>,
        cardinality: usize,
    ) -> MinHashSignature {
        self.signature_of_hashes_scalar(hashes, cardinality)
    }

    /// The scalar reference sketch kernel: one `mix64` + compare per
    /// (value, seed) pair, exactly as the pre-SIMD builder computed it.
    /// The blocked kernel in [`MinHasher::signature_of_hash_slice`] must
    /// stay bit-identical to this for every input.
    pub fn signature_of_hashes_scalar(
        &self,
        hashes: impl Iterator<Item = u64>,
        cardinality: usize,
    ) -> MinHashSignature {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        for h in hashes {
            for (slot, &seed) in sig.iter_mut().zip(&self.seeds) {
                let v = mix64(h ^ seed);
                if v < *slot {
                    *slot = v;
                }
            }
        }
        MinHashSignature { sig, cardinality }
    }

    /// Vectorized sketch over a slice of pre-hashed set elements: the hot
    /// kernel of the offline build. Streams `hashes` in cache-sized batches
    /// and folds each batch into the k seed lanes, [`LANES`] seeds at a
    /// time, with branchless minima. Minima commute and associate, so the
    /// result is bit-identical to the scalar reference for any batching —
    /// pinned by the `minhash_equivalence` proptest suite.
    pub fn signature_of_hash_slice(&self, hashes: &[u64], cardinality: usize) -> MinHashSignature {
        if !simd::simd_enabled() || self.seeds.len() < LANES || hashes.is_empty() {
            return self.signature_of_hashes_scalar(hashes.iter().copied(), cardinality);
        }
        let mut sig = vec![u64::MAX; self.seeds.len()];
        sketch_blocked(&self.seeds, hashes, &mut sig);
        MinHashSignature { sig, cardinality }
    }

    /// Sketch a column's distinct non-null value set.
    ///
    /// Sketches from the column's pre-hashed distinct set
    /// ([`Column::distinct_hashes`]); the offline builder goes one step
    /// further and reuses the hash vector already stored on the column's
    /// profile via [`MinHasher::signature_of_hash_slice`].
    pub fn signature_of_column(&self, col: &Column) -> MinHashSignature {
        self.signature_of_hash_slice(&col.distinct_hashes(), col.distinct_count())
    }
}

/// Values per streamed batch of the blocked sketch kernel. 512 hashes = 4
/// KiB, comfortably L1-resident, so re-reading the batch once per seed block
/// stays in cache while the k accumulator lanes live in registers.
const SKETCH_BATCH: usize = 512;

simd_multiversion! {
    /// The blocked sketch kernel: for each batch of values and each block of
    /// eight seeds, update eight running minima branchlessly. `sig` must
    /// arrive initialised to `u64::MAX` and its length must equal
    /// `seeds.len()`. Seed-count tails (`k % LANES`) fall back to the scalar
    /// loop over the same batch, so any k is supported.
    fn sketch_blocked(seeds: &[u64], hashes: &[u64], sig: &mut [u64]) {
        let full = seeds.len() - seeds.len() % LANES;
        for batch in hashes.chunks(SKETCH_BATCH) {
            for (block, seed_chunk) in seeds[..full].chunks_exact(LANES).enumerate() {
                let seedv = U64x8::load(seed_chunk);
                let slots = &mut sig[block * LANES..][..LANES];
                let mut acc = U64x8::load(slots);
                for &h in batch {
                    acc = acc.min(mix64x8(U64x8::splat(h).xor(seedv)));
                }
                acc.store(slots);
            }
            for (slot, &seed) in sig[full..].iter_mut().zip(&seeds[full..]) {
                for &h in batch {
                    let v = mix64(h ^ seed);
                    if v < *slot {
                        *slot = v;
                    }
                }
            }
        }
    }
}

/// Count of common elements between two **sorted, deduplicated** hash
/// vectors — the scalar reference: a single linear merge, no set
/// construction. [`merge_intersection`] must always return the same count.
pub(crate) fn merge_intersection_scalar(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// When one side is at least this many times longer than the other, gallop
/// through the long side instead of merging linearly. Hash sets are
/// uniform, so expected run length in the longer side ≈ the ratio; galloping
/// overtakes the linear merge once runs exceed a handful of elements.
const GALLOP_RATIO: usize = 8;

/// Galloping intersection for skewed cardinalities (`|small| ≪ |large|`):
/// for each element of `small`, exponential search from the previous
/// position in `large`, then binary search within the bracketed run —
/// `O(|small| · log |large|)` instead of `O(|small| + |large|)`.
fn gallop_intersection(small: &[u64], large: &[u64]) -> usize {
    let mut inter = 0usize;
    let mut lo = 0usize;
    for &x in small {
        if lo >= large.len() {
            break;
        }
        // Exponential probe: bracket the first index with large[idx] >= x.
        let mut bound = 1usize;
        while lo + bound < large.len() && large[lo + bound] < x {
            bound <<= 1;
        }
        let start = lo + bound / 2;
        let end = (lo + bound + 1).min(large.len());
        lo = start + large[start..end].partition_point(|&v| v < x);
        if large.get(lo) == Some(&x) {
            inter += 1;
            lo += 1;
        }
    }
    inter
}

/// Consecutive scalar equalities before the merge tries whole-block
/// compares. Uniform hash sets with moderate overlap have short equal runs,
/// where block attempts only waste a vector compare per match; a run this
/// long signals near-duplicate columns, where blocks advance [`LANES`]
/// elements per compare.
const EQ_RUN_TRIGGER: usize = 8;

/// Backoff cap for the adaptive trigger (timsort's MIN_GALLOP idea): every
/// failed block attempt doubles the trigger up to this, so inputs whose
/// equal runs hover just at the trigger stop paying for speculation.
const EQ_RUN_TRIGGER_MAX: usize = 64;

simd_multiversion! {
    /// Linear merge with a run-detected block fast path: after enough
    /// consecutive matches (near-duplicate columns — the LSH collision case
    /// verify_exact sees constantly), equal runs advance [`LANES`] elements
    /// per whole-block compare. Interleaved inputs never trigger it and pay
    /// only a counter; a failed block attempt doubles the trigger so
    /// borderline inputs quickly stop speculating. Skewed inputs are routed
    /// to the galloping path by [`merge_intersection`] before this runs.
    fn merge_intersection_blocked(a: &[u64], b: &[u64]) -> usize {
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        let mut run = 0usize;
        let mut trigger = EQ_RUN_TRIGGER;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                    run += 1;
                    if run >= trigger {
                        let before = i;
                        while i + LANES <= a.len()
                            && j + LANES <= b.len()
                            && U64x8::load(&a[i..]).count_eq(U64x8::load(&b[j..])) == LANES
                        {
                            inter += LANES;
                            i += LANES;
                            j += LANES;
                        }
                        trigger = if i > before {
                            EQ_RUN_TRIGGER
                        } else {
                            (trigger * 2).min(EQ_RUN_TRIGGER_MAX)
                        };
                        run = 0;
                    }
                }
                std::cmp::Ordering::Less => {
                    i += 1;
                    run = 0;
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    run = 0;
                }
            }
        }
        inter
    }
}

/// Intersection count dispatch: scalar reference under `VER_SIMD=0`,
/// galloping for skewed cardinalities, blocked merge otherwise. All three
/// count the same set, so the result — and every containment score built on
/// it — is identical whichever path runs.
fn merge_intersection(a: &[u64], b: &[u64]) -> usize {
    if !simd::simd_enabled() || a.len() + b.len() < 64 {
        // Tiny inputs: the plain merge is already optimal and the blocked
        // paths' bookkeeping would only add overhead.
        return merge_intersection_scalar(a, b);
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.len() >= GALLOP_RATIO.saturating_mul(small.len().max(1)) {
        return gallop_intersection(small, large);
    }
    merge_intersection_blocked(a, b)
}

/// Exact containment `|A ∩ B| / |A|` over pre-hashed distinct sets (sorted,
/// deduplicated, as produced by [`Column::distinct_hashes`] and stored on
/// column profiles). This is what `verify_exact` hypergraph construction
/// runs per LSH candidate pair: a merge over sorted vectors instead of two
/// fresh `FxHashSet<Value>` clones per call — galloping when cardinalities
/// are skewed, block-compare fast paths otherwise (`merge_intersection`
/// internally).
///
/// "Exact" means exact over the 64-bit hash images: two distinct values
/// whose Fx hashes collide would count as one. That is a ~`n²/2⁶⁴`
/// per-column event — negligible against the MinHash estimation error this
/// mode exists to remove — but it is not cryptographically guaranteed.
pub fn hashed_containment(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    merge_intersection(a, b) as f64 / a.len() as f64
}

/// [`hashed_containment`] on the scalar reference merge, regardless of the
/// active SIMD backend. Exposed for equivalence tests and the
/// `exp_bench_report` kernel microbenchmarks; always equals
/// [`hashed_containment`].
pub fn hashed_containment_scalar(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    merge_intersection_scalar(a, b) as f64 / a.len() as f64
}

/// `hashed_containment(a, b).max(hashed_containment(b, a))` with the
/// intersection merged **once**: both directions share `|A ∩ B|`, and the
/// max of `inter/|A|` and `inter/|B|` is `inter / min(|A|, |B|)` — the same
/// division the two-call form would have picked, so the result is
/// bit-identical. This is what hypergraph verification scores per candidate
/// pair; the single merge halves its dominant cost.
pub fn hashed_containment_max(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    merge_intersection(a, b) as f64 / a.len().min(b.len()) as f64
}

/// `estimated_containment(a, b).max(estimated_containment(b, a))` with the
/// signature agreement counted **once**: [`estimated_intersection`] is
/// symmetric in its arguments, and dividing by the smaller cardinality is
/// exactly the larger of the two quotients, so the result is bit-identical
/// to the two-call form. The estimated-mode hypergraph scorer runs this per
/// candidate pair.
pub fn estimated_containment_max(a: &MinHashSignature, b: &MinHashSignature) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let denom = a.cardinality.min(b.cardinality) as f64;
    (estimated_intersection(a, b) / denom).clamp(0.0, 1.0)
}

/// Exact Jaccard similarity over pre-hashed distinct sets (see
/// [`hashed_containment`] for the input contract).
pub fn hashed_jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = merge_intersection(a, b);
    inter as f64 / (a.len() + b.len() - inter) as f64
}

simd_multiversion! {
    /// Count of positions where two equal-length slices agree, [`LANES`] at
    /// a time with a scalar tail. Plain counting — identical to the
    /// `zip().filter().count()` reference by construction.
    fn count_agreements(a: &[u64], b: &[u64]) -> usize {
        let full = a.len() - a.len() % LANES;
        let mut matches = 0usize;
        for (ca, cb) in a[..full].chunks_exact(LANES).zip(b[..full].chunks_exact(LANES)) {
            matches += U64x8::load(ca).count_eq(U64x8::load(cb));
        }
        matches
            + a[full..]
                .iter()
                .zip(&b[full..])
                .filter(|(x, y)| x == y)
                .count()
    }
}

/// Estimated Jaccard similarity from two signatures (same family, same k).
pub fn estimated_jaccard(a: &MinHashSignature, b: &MinHashSignature) -> f64 {
    debug_assert_eq!(
        a.sig.len(),
        b.sig.len(),
        "signatures from different families"
    );
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let matches = if simd::simd_enabled() {
        count_agreements(&a.sig, &b.sig)
    } else {
        a.sig.iter().zip(&b.sig).filter(|(x, y)| x == y).count()
    };
    matches as f64 / a.sig.len() as f64
}

/// Lazo estimate of `|A ∩ B|` from the similarity estimate and exact
/// cardinalities.
pub fn estimated_intersection(a: &MinHashSignature, b: &MinHashSignature) -> f64 {
    let j = estimated_jaccard(a, b);
    let est = j / (1.0 + j) * (a.cardinality + b.cardinality) as f64;
    // Intersection cannot exceed either set.
    est.min(a.cardinality as f64).min(b.cardinality as f64)
}

/// Estimated containment `C(A ⊆ B) = |A ∩ B| / |A|` in `[0, 1]`.
pub fn estimated_containment(a: &MinHashSignature, b: &MinHashSignature) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    (estimated_intersection(a, b) / a.cardinality as f64).clamp(0.0, 1.0)
}

/// Exact Jaccard containment `|A ∩ B| / |A|` between two columns' distinct
/// value sets. Convenience wrapper over [`hashed_containment`] for tests
/// and ground-truth tooling (same hash-collision caveat); hot paths pass
/// stored hash vectors directly.
pub fn exact_containment(a: &Column, b: &Column) -> f64 {
    hashed_containment(&a.distinct_hashes(), &b.distinct_hashes())
}

/// Exact Jaccard similarity between two columns' distinct value sets
/// (wrapper over [`hashed_jaccard`], same contract as
/// [`exact_containment`]).
pub fn exact_jaccard(a: &Column, b: &Column) -> f64 {
    hashed_jaccard(&a.distinct_hashes(), &b.distinct_hashes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;

    fn col(range: std::ops::Range<i64>) -> Column {
        range.map(Value::Int).collect()
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let h = MinHasher::new(64, 7);
        let a = h.signature_of_column(&col(0..100));
        let b = h.signature_of_column(&col(0..100));
        assert_eq!(estimated_jaccard(&a, &b), 1.0);
        assert!((estimated_containment(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(128, 7);
        let a = h.signature_of_column(&col(0..200));
        let b = h.signature_of_column(&col(10_000..10_200));
        assert!(estimated_jaccard(&a, &b) < 0.05);
        assert!(estimated_containment(&a, &b) < 0.1);
    }

    #[test]
    fn half_overlap_estimates_track_truth() {
        // |A|=200, |B|=200, |A∩B|=100 → J = 100/300 ≈ 0.333, C(A⊆B)=0.5.
        let h = MinHasher::new(256, 42);
        let a = h.signature_of_column(&col(0..200));
        let b = h.signature_of_column(&col(100..300));
        let j = estimated_jaccard(&a, &b);
        assert!((j - 1.0 / 3.0).abs() < 0.12, "jaccard estimate {j}");
        let c = estimated_containment(&a, &b);
        assert!((c - 0.5).abs() < 0.15, "containment estimate {c}");
    }

    #[test]
    fn subset_containment_is_high() {
        // A ⊂ B with |A|=50, |B|=500 → C(A⊆B)=1.0, J≈0.1.
        let h = MinHasher::new(256, 3);
        let a = h.signature_of_column(&col(0..50));
        let b = h.signature_of_column(&col(0..500));
        let c = estimated_containment(&a, &b);
        assert!(c > 0.75, "containment of subset should be near 1, got {c}");
        // Asymmetry: B is mostly not inside A.
        let c_rev = estimated_containment(&b, &a);
        assert!(
            c_rev < 0.35,
            "reverse containment should be ~0.1, got {c_rev}"
        );
    }

    #[test]
    fn empty_columns_behave() {
        let h = MinHasher::new(32, 1);
        let e = h.signature_of_column(&Column::new());
        let a = h.signature_of_column(&col(0..10));
        assert!(e.is_empty());
        assert_eq!(estimated_jaccard(&e, &e), 1.0);
        assert_eq!(estimated_jaccard(&e, &a), 0.0);
        assert_eq!(estimated_containment(&e, &a), 0.0);
    }

    #[test]
    fn exact_measures_ground_truth() {
        let a = col(0..100);
        let b = col(50..150);
        assert!((exact_containment(&a, &b) - 0.5).abs() < 1e-12);
        assert!((exact_jaccard(&a, &b) - 50.0 / 150.0).abs() < 1e-12);
        assert_eq!(exact_containment(&Column::new(), &a), 0.0);
        assert_eq!(exact_jaccard(&Column::new(), &Column::new()), 1.0);
    }

    #[test]
    fn hashed_measures_agree_with_column_measures() {
        let a = col(0..100);
        let b = col(50..150);
        let (ha, hb) = (a.distinct_hashes(), b.distinct_hashes());
        assert!((hashed_containment(&ha, &hb) - exact_containment(&a, &b)).abs() < 1e-12);
        assert!((hashed_jaccard(&ha, &hb) - exact_jaccard(&a, &b)).abs() < 1e-12);
        assert_eq!(hashed_containment(&[], &ha), 0.0);
        assert_eq!(hashed_jaccard(&[], &[]), 1.0);
        assert_eq!(hashed_jaccard(&[], &ha), 0.0);
    }

    #[test]
    fn signature_from_stored_hashes_matches_signature_of_column() {
        // The builder feeds sketches from profile-stored hash vectors; they
        // must be bit-identical to sketching the column directly.
        let h = MinHasher::new(64, 21);
        let c = col(0..300);
        let from_col = h.signature_of_column(&c);
        let hashes = c.distinct_hashes();
        let from_hashes = h.signature_of_hashes(hashes.iter().copied(), c.distinct_count());
        assert_eq!(from_col, from_hashes);
    }

    #[test]
    fn signature_ignores_duplicates_and_nulls() {
        let h = MinHasher::new(64, 9);
        let with_dups = Column::from_values(vec![
            Value::Int(1),
            Value::Int(1),
            Value::Null,
            Value::Int(2),
        ]);
        let clean = Column::from_values(vec![Value::Int(1), Value::Int(2)]);
        let a = h.signature_of_column(&with_dups);
        let b = h.signature_of_column(&clean);
        assert_eq!(a, b);
    }

    #[test]
    fn blocked_kernel_matches_scalar_reference() {
        // Including k values that are not multiples of the lane width.
        for k in [1, 7, 8, 9, 64, 100, 128] {
            let h = MinHasher::new(k, 0xFEED);
            let hashes: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let scalar = h.signature_of_hashes_scalar(hashes.iter().copied(), hashes.len());
            let blocked = h.signature_of_hash_slice(&hashes, hashes.len());
            assert_eq!(scalar, blocked, "k={k}");
        }
    }

    #[test]
    fn symmetric_max_forms_match_two_call_forms() {
        let h = MinHasher::new(128, 17);
        let cols = [col(0..200), col(100..300), col(0..50), Column::new()];
        for a in &cols {
            for b in &cols {
                let (ha, hb) = (a.distinct_hashes(), b.distinct_hashes());
                let two_call = hashed_containment(&ha, &hb).max(hashed_containment(&hb, &ha));
                assert_eq!(
                    hashed_containment_max(&ha, &hb).to_bits(),
                    two_call.to_bits()
                );
                let (sa, sb) = (h.signature_of_column(a), h.signature_of_column(b));
                let two_call = estimated_containment(&sa, &sb).max(estimated_containment(&sb, &sa));
                assert_eq!(
                    estimated_containment_max(&sa, &sb).to_bits(),
                    two_call.to_bits()
                );
            }
        }
    }

    #[test]
    fn merge_paths_agree_on_skew_and_overlap() {
        let dense: Vec<u64> = (0..4096).map(|i| i * 3).collect();
        let sparse: Vec<u64> = (0..40).map(|i| i * 300).collect();
        let shifted: Vec<u64> = (0..4096).map(|i| i * 3 + 1500).collect();
        for (a, b) in [
            (&dense, &sparse),
            (&sparse, &dense),
            (&dense, &shifted),
            (&dense, &dense),
            (&sparse, &Vec::new()),
        ] {
            let reference = merge_intersection_scalar(a, b);
            assert_eq!(merge_intersection(a, b), reference);
            assert_eq!(merge_intersection_blocked(a, b), reference);
            let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            assert_eq!(gallop_intersection(s, l), reference);
        }
    }

    #[test]
    fn different_seeds_give_different_families() {
        let h1 = MinHasher::new(16, 1);
        let h2 = MinHasher::new(16, 2);
        let c = col(0..50);
        assert_ne!(
            h1.signature_of_column(&c).sig,
            h2.signature_of_column(&c).sig
        );
    }
}
