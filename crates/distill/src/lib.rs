//! VIEW-DISTILLATION — the paper's 4C component (Section V, Algorithm 3).
//!
//! Candidate PJ-views produced by join-graph search are noisy: duplicates,
//! subsumed views, partial views that union into bigger ones, and views that
//! *disagree* on the same key. Distillation classifies view pairs into the
//! **4C categories** and prunes accordingly:
//!
//! | category       | definition (same schema)                     | action |
//! |----------------|----------------------------------------------|--------|
//! | Compatible     | identical row sets (Def. 5)                  | keep one |
//! | Contained      | `V2 ⊂ V1` (Def. 6)                           | keep the larger |
//! | Complementary  | same key, overlapping, neither above (Def. 8)| union  |
//! | Contradictory  | same key, key value → different rows (Def. 9)| surface to user |
//!
//! Module map: [`categories`] (labels + the view graph `G`), [`keys`]
//! (candidate-key discovery, Def. 7), [`hashes`] (row-hash sets with the
//! paper's cache), [`blocks`] (SCHEMA-BASED-BLOCKS), [`algo`] (the two-phase
//! Algorithm 3 with per-phase timing for Fig. 4a), [`strategy`]
//! (C1/C2/C3 pruning and the Fig. 2 contradiction-step simulation).
//!
//! Layer 3 of the crate map in the repo-root `ARCHITECTURE.md` — between
//! the MATERIALIZER and VIEW-PRESENTATION on the online path.

pub mod algo;
pub mod blocks;
pub mod categories;
pub mod hashes;
pub mod keys;
pub mod strategy;

pub use algo::{distill, distill_budgeted, Contradiction, DistillConfig, DistillOutput};
pub use categories::{Category, ViewGraph};
pub use strategy::{contradiction_steps, union_complementary, CaseChoice, DistillCounts};
