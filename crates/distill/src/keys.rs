//! Candidate-key discovery (Definition 7).
//!
//! A candidate key is an attribute set that uniquely identifies rows. The
//! paper identifies *approximate* keys (citing fast FK-detection work
//! [28, 29]): we accept attribute sets whose distinct-combination ratio is
//! ≥ `1 − epsilon`. Search proceeds by width (single columns, then pairs)
//! and prunes supersets of already-found keys — a key extended by any
//! column is still unique and therefore redundant as a *candidate* key.

use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use ver_common::fxhash::{FxHashSet, FxHasher};
use ver_store::table::Table;

/// A candidate key: sorted column ordinals of the view's schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Key(pub Vec<u16>);

impl Key {
    /// Single-column key.
    pub fn single(ordinal: u16) -> Self {
        Key(vec![ordinal])
    }

    /// Multi-column key (ordinals are sorted).
    pub fn of(mut ordinals: Vec<u16>) -> Self {
        ordinals.sort_unstable();
        ordinals.dedup();
        Key(ordinals)
    }

    /// Key width.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// True if `other`'s ordinals all appear in `self`.
    pub fn contains_key(&self, other: &Key) -> bool {
        other.0.iter().all(|o| self.0.contains(o))
    }
}

/// Hash of a row projected onto a key (the key *value*).
pub fn key_value_hash(table: &Table, row: usize, key: &Key) -> u64 {
    let mut h = FxHasher::default();
    for &o in &key.0 {
        match table.column(o as usize).and_then(|c| c.get(row)) {
            Some(v) => v.hash(&mut h),
            None => ver_common::value::Value::Null.hash(&mut h),
        }
    }
    h.finish()
}

/// Uniqueness ratio of `key` over `table`: distinct key values / rows.
pub fn key_uniqueness(table: &Table, key: &Key) -> f64 {
    let rows = table.row_count();
    if rows == 0 {
        return 1.0;
    }
    let mut seen: FxHashSet<u64> = FxHashSet::with_capacity_and_hasher(rows, Default::default());
    for r in 0..rows {
        seen.insert(key_value_hash(table, r, key));
    }
    seen.len() as f64 / rows as f64
}

/// Find candidate keys of width ≤ `max_width` with uniqueness ≥
/// `1 − epsilon`. Keys that are supersets of a found key are pruned.
/// Returns keys sorted (narrow first, then by ordinals).
pub fn find_candidate_keys(table: &Table, epsilon: f64, max_width: usize) -> Vec<Key> {
    let threshold = 1.0 - epsilon;
    let arity = table.column_count() as u16;
    let mut keys: Vec<Key> = Vec::new();

    for o in 0..arity {
        let k = Key::single(o);
        if key_uniqueness(table, &k) >= threshold {
            keys.push(k);
        }
    }
    if max_width >= 2 {
        for a in 0..arity {
            for b in (a + 1)..arity {
                let k = Key::of(vec![a, b]);
                if keys.iter().any(|found| k.contains_key(found)) {
                    continue; // superset of an existing key
                }
                if key_uniqueness(table, &k) >= threshold {
                    keys.push(k);
                }
            }
        }
    }
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    /// (id unique, name unique, city repeats, zip repeats; (city, zip) unique)
    fn table() -> Table {
        let mut b = TableBuilder::new("t", &["id", "name", "city", "zip"]);
        let rows = [
            (1, "ann", "springfield", 10),
            (2, "bob", "springfield", 20),
            (3, "cat", "shelbyville", 10),
            (4, "dan", "shelbyville", 20),
        ];
        for (id, n, c, z) in rows {
            b.push_row(vec![
                Value::Int(id),
                Value::text(n),
                Value::text(c),
                Value::Int(z),
            ])
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn single_column_keys_found() {
        let keys = find_candidate_keys(&table(), 0.0, 1);
        assert_eq!(keys, vec![Key::single(0), Key::single(1)]);
    }

    #[test]
    fn pair_keys_found_when_singles_fail() {
        let keys = find_candidate_keys(&table(), 0.0, 2);
        assert!(keys.contains(&Key::of(vec![2, 3])), "city+zip is a key");
        // Pairs containing id or name are pruned as supersets.
        assert!(!keys.contains(&Key::of(vec![0, 2])));
    }

    #[test]
    fn uniqueness_is_exact() {
        let t = table();
        assert_eq!(key_uniqueness(&t, &Key::single(0)), 1.0);
        assert_eq!(key_uniqueness(&t, &Key::single(2)), 0.5);
        assert_eq!(key_uniqueness(&t, &Key::of(vec![2, 3])), 1.0);
    }

    #[test]
    fn epsilon_admits_approximate_keys() {
        let mut b = TableBuilder::new("t", &["almost"]);
        for i in 0..9 {
            b.push_row(vec![Value::Int(i)]).unwrap();
        }
        b.push_row(vec![Value::Int(0)]).unwrap(); // one duplicate in 10 rows
        let t = b.build();
        assert!(find_candidate_keys(&t, 0.0, 1).is_empty());
        assert_eq!(find_candidate_keys(&t, 0.15, 1), vec![Key::single(0)]);
    }

    #[test]
    fn key_value_hash_distinguishes_key_values() {
        let t = table();
        let k = Key::of(vec![2, 3]);
        let h: FxHashSet<u64> = (0..4).map(|r| key_value_hash(&t, r, &k)).collect();
        assert_eq!(h.len(), 4);
        // Single-column city key collides across same-city rows.
        let k = Key::single(2);
        assert_eq!(key_value_hash(&t, 0, &k), key_value_hash(&t, 1, &k));
    }

    #[test]
    fn empty_table_has_all_keys() {
        let t = TableBuilder::new("e", &["a"]).build();
        assert_eq!(key_uniqueness(&t, &Key::single(0)), 1.0);
        assert_eq!(find_candidate_keys(&t, 0.0, 1), vec![Key::single(0)]);
    }

    #[test]
    fn no_keys_when_all_columns_repeat() {
        let mut b = TableBuilder::new("t", &["a"]);
        for _ in 0..5 {
            b.push_row(vec![Value::Int(7)]).unwrap();
        }
        let t = b.build();
        assert!(find_candidate_keys(&t, 0.0, 2).is_empty());
    }

    #[test]
    fn key_ordering_is_deterministic() {
        let keys = find_candidate_keys(&table(), 0.0, 2);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
