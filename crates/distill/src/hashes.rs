//! Row-hash sets per view, with the cache Algorithm 3 calls out
//! ("we employ a cache to not hash any view multiple times").

use ver_common::fxhash::{FxHashMap, FxHashSet};
use ver_common::ids::ViewId;
use ver_engine::rowhash::table_hash_set;
use ver_engine::view::View;

/// Cache of `H(V)` keyed by view id.
#[derive(Debug, Default)]
pub struct HashCache {
    sets: FxHashMap<ViewId, FxHashSet<u64>>,
}

/// Set relationship between two row-hash sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRelation {
    /// Identical sets.
    Equal,
    /// Left strictly inside right.
    LeftInRight,
    /// Right strictly inside left.
    RightInLeft,
    /// Non-empty intersection, neither contained.
    Overlap,
    /// Empty intersection.
    Disjoint,
}

impl HashCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache with `H(V)` computed for every view up front, fanning the
    /// per-view row hashing out on `pool`. Later `get`/`relation` calls
    /// become pure lookups, which keeps the sequential 4C control flow
    /// (and therefore its output) unchanged while the hashing — the bulk
    /// of the hash+C1 phase — runs in parallel.
    pub fn prefill(views: &[View], pool: &ver_common::pool::ThreadPool) -> Self {
        let sets = pool.par_map(views, |v| table_hash_set(&v.table));
        HashCache {
            sets: views.iter().map(|v| v.id).zip(sets).collect(),
        }
    }

    /// Get (or compute) `H(V)`.
    pub fn get(&mut self, view: &View) -> &FxHashSet<u64> {
        self.sets
            .entry(view.id)
            .or_insert_with(|| table_hash_set(&view.table))
    }

    /// Number of cached views.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Relation between two views' row sets (computes/caches both).
    pub fn relation(&mut self, a: &View, b: &View) -> SetRelation {
        // Borrowck: materialise `a`'s set before borrowing `b`'s.
        self.get(a);
        self.get(b);
        let sa = &self.sets[&a.id];
        let sb = &self.sets[&b.id];
        relation_of(sa, sb)
    }
}

/// Compute the [`SetRelation`] between two hash sets.
pub fn relation_of(sa: &FxHashSet<u64>, sb: &FxHashSet<u64>) -> SetRelation {
    if sa.len() == sb.len() && sa == sb {
        return SetRelation::Equal;
    }
    let (small, large, small_is_left) = if sa.len() <= sb.len() {
        (sa, sb, true)
    } else {
        (sb, sa, false)
    };
    let inter = small.iter().filter(|h| large.contains(*h)).count();
    if inter == 0 {
        return SetRelation::Disjoint;
    }
    if inter == small.len() && small.len() < large.len() {
        return if small_is_left {
            SetRelation::LeftInRight
        } else {
            SetRelation::RightInLeft
        };
    }
    SetRelation::Overlap
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_engine::view::{Provenance, View};
    use ver_store::table::TableBuilder;

    fn view(id: u32, values: &[i64]) -> View {
        let mut b = TableBuilder::new("v", &["x"]);
        for &v in values {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        View::new(ViewId(id), b.build(), Provenance::default())
    }

    #[test]
    fn relations_cover_all_cases() {
        let mut cache = HashCache::new();
        let a = view(0, &[1, 2, 3]);
        let b = view(1, &[3, 2, 1]);
        let c = view(2, &[1, 2]);
        let d = view(3, &[2, 3, 4]);
        let e = view(4, &[9, 10]);
        assert_eq!(cache.relation(&a, &b), SetRelation::Equal);
        assert_eq!(cache.relation(&c, &a), SetRelation::LeftInRight);
        assert_eq!(cache.relation(&a, &c), SetRelation::RightInLeft);
        assert_eq!(cache.relation(&a, &d), SetRelation::Overlap);
        assert_eq!(cache.relation(&a, &e), SetRelation::Disjoint);
    }

    #[test]
    fn prefill_matches_lazy_computation() {
        let a = view(0, &[1, 2, 3]);
        let b = view(1, &[1, 2]);
        let views = vec![a, b];
        for threads in [1usize, 4] {
            let mut pre = HashCache::prefill(&views, &ver_common::pool::ThreadPool::new(threads));
            assert_eq!(pre.len(), 2);
            let mut lazy = HashCache::new();
            for v in &views {
                assert_eq!(pre.get(v), lazy.get(v), "H(V{}) differs", v.id.0);
            }
            assert_eq!(pre.relation(&views[0], &views[1]), SetRelation::RightInLeft);
        }
    }

    #[test]
    fn cache_computes_each_view_once() {
        let mut cache = HashCache::new();
        let a = view(0, &[1, 2, 3]);
        let b = view(1, &[1, 2]);
        cache.relation(&a, &b);
        cache.relation(&a, &b);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn empty_views_are_disjoint_from_everything_nonempty() {
        let mut cache = HashCache::new();
        let a = view(0, &[]);
        let b = view(1, &[1]);
        assert_eq!(cache.relation(&a, &b), SetRelation::Disjoint);
        // Two empty sets are equal.
        let c = view(2, &[]);
        assert_eq!(cache.relation(&a, &c), SetRelation::Equal);
    }

    #[test]
    fn same_size_different_content_is_overlap_or_disjoint() {
        let mut cache = HashCache::new();
        let a = view(0, &[1, 2]);
        let b = view(1, &[2, 3]);
        assert_eq!(cache.relation(&a, &b), SetRelation::Overlap);
    }
}
