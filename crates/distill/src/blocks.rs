//! SCHEMA-BASED-BLOCKS (Algorithm 3 line 2).
//!
//! Views are compared under 4C only when they share a schema signature;
//! blocking by signature turns the quadratic comparison into
//! `O(n + α·Γ²)` where α is the number of distinct schemas and Γ the
//! largest block (the paper's complexity analysis).

use ver_common::fxhash::FxHashMap;
use ver_engine::view::View;

/// One block: indices (into the input slice) of views sharing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaBlock {
    /// The shared schema signature.
    pub signature: String,
    /// Indices into the view slice, ascending.
    pub members: Vec<usize>,
}

/// Partition `views` into schema blocks, ordered by first appearance.
pub fn schema_blocks(views: &[View]) -> Vec<SchemaBlock> {
    let mut order: Vec<String> = Vec::new();
    let mut map: FxHashMap<String, Vec<usize>> = FxHashMap::default();
    for (i, v) in views.iter().enumerate() {
        let sig = v.schema_signature();
        if !map.contains_key(&sig) {
            order.push(sig.clone());
        }
        map.entry(sig).or_default().push(i);
    }
    order
        .into_iter()
        .map(|signature| {
            let members = map.remove(&signature).expect("inserted above");
            SchemaBlock { signature, members }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::ids::ViewId;
    use ver_common::value::Value;
    use ver_engine::view::Provenance;
    use ver_store::table::TableBuilder;

    fn view(id: u32, cols: &[&str]) -> View {
        let mut b = TableBuilder::new("v", cols);
        b.push_row(vec![Value::Int(1); cols.len()]).unwrap();
        View::new(ViewId(id), b.build(), Provenance::default())
    }

    #[test]
    fn blocks_group_same_signature() {
        let views = vec![
            view(0, &["state", "pop"]),
            view(1, &["city", "pop"]),
            view(2, &["state", "pop"]),
        ];
        let blocks = schema_blocks(&views);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].members, vec![0, 2]);
        assert_eq!(blocks[1].members, vec![1]);
    }

    #[test]
    fn signature_is_order_sensitive() {
        let views = vec![view(0, &["a", "b"]), view(1, &["b", "a"])];
        assert_eq!(schema_blocks(&views).len(), 2);
    }

    #[test]
    fn empty_input_no_blocks() {
        assert!(schema_blocks(&[]).is_empty());
    }

    #[test]
    fn blocks_preserve_first_appearance_order() {
        let views = vec![view(0, &["z"]), view(1, &["a"]), view(2, &["z"])];
        let blocks = schema_blocks(&views);
        assert_eq!(blocks[0].signature, views[0].schema_signature());
        assert_eq!(blocks[1].signature, views[1].schema_signature());
    }
}
