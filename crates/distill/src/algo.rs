//! Algorithm 3: two-phase 4C categorisation with per-phase timing.
//!
//! Phase timings use the labels of Fig. 4a: `schema_partition`
//! (SCHEMA-BASED-BLOCKS), `hash_c1` (row hashing + compatible detection),
//! `c2` (containment), `c3_c4` (key discovery, complementary marking,
//! inverted key index, contradiction grouping).

use crate::blocks::schema_blocks;
use crate::categories::{Category, ViewGraph};
use crate::hashes::{HashCache, SetRelation};
use crate::keys::{find_candidate_keys, key_value_hash, Key};
use serde::{Deserialize, Serialize};
use ver_common::budget::QueryBudget;
use ver_common::error::Result;
use ver_common::fxhash::{fx_hash_u64, FxHashMap, FxHashSet};
use ver_common::ids::ViewId;
use ver_common::timer::PhaseTimer;
use ver_engine::rowhash::hash_table_row;
use ver_engine::view::View;

/// Tunables for distillation.
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Key-uniqueness slack (0.0 = exact keys).
    pub key_epsilon: f64,
    /// Maximum candidate-key width.
    pub max_key_width: usize,
    /// Worker threads for the per-view work — row hashing, candidate-key
    /// discovery, per-key contradiction hashing (`0` = one per available
    /// hardware thread; default honours the `VER_THREADS` environment
    /// variable). Output is identical for every value.
    pub threads: usize,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            key_epsilon: 0.0,
            max_key_width: 2,
            threads: ver_common::pool::default_threads(),
        }
    }
}

/// One contradiction signal: under `key`, the views split into `groups`
/// that disagree about at least one key value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contradiction {
    /// The candidate key the contradiction is relative to.
    pub key: Key,
    /// Disagreeing groups (each sorted; ≥ 2 groups).
    pub groups: Vec<Vec<ViewId>>,
}

impl Contradiction {
    /// Total views involved.
    pub fn view_count(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Degree of discrimination: the number of views that agree with one
    /// side (the largest group) — Fig. 2 sorts contradictions by this,
    /// descending.
    pub fn discrimination(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Output of Algorithm 3.
#[derive(Debug)]
pub struct DistillOutput {
    /// The labelled graph `G`.
    pub graph: ViewGraph,
    /// Candidate keys per view (only for C2 survivors; earlier views are
    /// represented by their compatible/containment representative).
    pub view_keys: FxHashMap<ViewId, Vec<Key>>,
    /// Compatible groups of size ≥ 2 (first member is the representative).
    pub compatible_groups: Vec<Vec<ViewId>>,
    /// Views remaining after compatible dedup (C1).
    pub survivors_c1: Vec<ViewId>,
    /// Views remaining after containment pruning (C2).
    pub survivors_c2: Vec<ViewId>,
    /// Contradiction signals among C2 survivors.
    pub contradictions: Vec<Contradiction>,
    /// Complementary pairs with the shared keys that make them so.
    pub complementary_pairs: Vec<(ViewId, ViewId, Vec<Key>)>,
    /// Per-phase wall times (Fig. 4a).
    pub timer: PhaseTimer,
}

impl DistillOutput {
    /// Number of original views distilled.
    pub fn original_count(&self) -> usize {
        self.graph.nodes().len()
    }
}

/// Run Algorithm 3 over `views`.
///
/// Infallible wrapper over [`distill_budgeted`] with an unlimited budget —
/// the historical entry point, bit-identical to pre-budget builds.
pub fn distill(views: &[View], config: &DistillConfig) -> DistillOutput {
    match distill_budgeted(views, config, &QueryBudget::none()) {
        Ok(out) => out,
        // Unlimited budgets never trip; the only other error source is a
        // worker panic (or an armed fault point), which the unbudgeted
        // entry point propagates as the panic it always was.
        Err(e) => panic!("distill failed: {e}"),
    }
}

/// Run Algorithm 3 over `views` under a [`QueryBudget`].
///
/// The cooperative deadline is checked per schema block in every phase and
/// per view in candidate-key discovery (the dominant per-view cost), so a
/// tripped budget surfaces as [`VerError::DeadlineExceeded`] within one
/// stage step. Distillation output is one connected artifact (a labelled
/// graph over *all* views), so unlike search it cannot drop individual
/// items: exhaustion fails the whole distill and the serving layer
/// degrades by returning ranked views without 4C labels. A panic in
/// per-view work is likewise confined to `Err(VerError::Internal)`.
///
/// [`VerError::DeadlineExceeded`]: ver_common::error::VerError
/// [`VerError::Internal`]: ver_common::error::VerError
pub fn distill_budgeted(
    views: &[View],
    config: &DistillConfig,
    budget: &QueryBudget,
) -> Result<DistillOutput> {
    let mut timer = PhaseTimer::new();
    let pool = ver_common::pool::ThreadPool::new(config.threads);
    let mut graph = ViewGraph::new(views.iter().map(|v| v.id).collect());

    // Phase SP: schema blocks.
    let blocks = timer.time("schema_partition", || schema_blocks(views));

    // Phase Hash + C1: row hashing fans out per view; the compatible-group
    // sweep over the prefilled cache stays sequential (it is pure lookups).
    budget.check("distill.hash_c1")?;
    let mut cache = timer.time("hash_c1", || HashCache::prefill(views, &pool));
    let mut compatible_groups: Vec<Vec<ViewId>> = Vec::new();
    let mut survivors_c1: Vec<usize> = Vec::new(); // indices into `views`
    timer.time("hash_c1", || -> Result<()> {
        for block in &blocks {
            budget.check("distill.c1")?;
            // representatives of this block with their hash-set sizes
            let mut reps: Vec<usize> = Vec::new();
            let mut groups: FxHashMap<usize, Vec<ViewId>> = FxHashMap::default();
            for &vi in &block.members {
                let mut matched = None;
                for &rep in &reps {
                    if cache.relation(&views[rep], &views[vi]) == SetRelation::Equal {
                        matched = Some(rep);
                        break;
                    }
                }
                match matched {
                    Some(rep) => {
                        graph.label(views[rep].id, views[vi].id, Category::Compatible);
                        groups.entry(rep).or_default().push(views[vi].id);
                    }
                    None => reps.push(vi),
                }
            }
            for rep in &reps {
                if let Some(members) = groups.remove(rep) {
                    let mut g = vec![views[*rep].id];
                    g.extend(members);
                    compatible_groups.push(g);
                }
            }
            survivors_c1.extend(reps);
        }
        Ok(())
    })?;

    // Phase C2: containment among C1 survivors, per block.
    let mut survivors_c2: Vec<usize> = Vec::new();
    timer.time("c2", || -> Result<()> {
        for block in &blocks {
            budget.check("distill.c2")?;
            let mut members: Vec<usize> = block
                .members
                .iter()
                .copied()
                .filter(|i| survivors_c1.contains(i))
                .collect();
            // Largest first: a view can only be contained in a larger one.
            members.sort_by_key(|&i| std::cmp::Reverse(cache.get(&views[i]).len()));
            let mut kept: Vec<usize> = Vec::new();
            'next_view: for vi in members {
                for &big in &kept {
                    if cache.relation(&views[big], &views[vi]) == SetRelation::RightInLeft {
                        graph.label(views[big].id, views[vi].id, Category::Contained);
                        continue 'next_view;
                    }
                }
                kept.push(vi);
            }
            survivors_c2.extend(kept);
        }
        survivors_c2.sort_unstable();
        Ok(())
    })?;

    // Phase C3 + C4: keys, complementary marking, contradictions.
    let mut view_keys: FxHashMap<ViewId, Vec<Key>> = FxHashMap::default();
    let mut complementary_pairs: Vec<(ViewId, ViewId, Vec<Key>)> = Vec::new();
    let mut contradictions: Vec<Contradiction> = Vec::new();
    timer.time("c3_c4", || -> Result<()> {
        // Candidate-key discovery is independent per view: fan out, then
        // insert in survivor order (order-preserving par_map keeps the map
        // contents identical to the sequential pass). The per-view closure
        // is the `distill.view` stage boundary: deadline check, fault
        // point, and panic isolation all sit here.
        let found = pool.try_par_map(&survivors_c2, |&vi| {
            ver_common::fault::hit(ver_common::fault::points::DISTILL_VIEW)?;
            budget.check("distill.view")?;
            Ok(find_candidate_keys(
                &views[vi].table,
                config.key_epsilon,
                config.max_key_width,
            ))
        });
        for (&vi, keys) in survivors_c2.iter().zip(found) {
            view_keys.insert(views[vi].id, keys?);
        }

        for block in &blocks {
            budget.check("distill.c3_c4")?;
            let members: Vec<usize> = block
                .members
                .iter()
                .copied()
                .filter(|i| survivors_c2.contains(i))
                .collect();
            if members.len() < 2 {
                continue;
            }

            // Keys shared by at least two members of the block.
            let mut key_owners: FxHashMap<Key, Vec<usize>> = FxHashMap::default();
            for &vi in &members {
                for k in &view_keys[&views[vi].id] {
                    key_owners.entry(k.clone()).or_default().push(vi);
                }
            }
            let mut shared_keys: Vec<(Key, Vec<usize>)> = key_owners
                .into_iter()
                .filter(|(_, owners)| owners.len() >= 2)
                .collect();
            shared_keys.sort_by(|a, b| a.0.cmp(&b.0));

            // Complementary marking: overlapping pairs sharing ≥ 1 key.
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    let shared: Vec<Key> = view_keys[&views[a].id]
                        .iter()
                        .filter(|k| view_keys[&views[b].id].contains(k))
                        .cloned()
                        .collect();
                    if shared.is_empty() {
                        continue;
                    }
                    if cache.relation(&views[a], &views[b]) == SetRelation::Overlap {
                        graph.label(views[a].id, views[b].id, Category::Complementary);
                        complementary_pairs.push((views[a].id, views[b].id, shared));
                    }
                }
            }

            // Contradictions: inverted index per shared key. The per-view
            // hashing (key values + row hashes, the expensive part) fans
            // out as ONE flat (key, owner) task list for the whole block —
            // keys typically have 2-3 owners each, so a per-key fan-out
            // would pay thread spawn/join per key for microseconds of
            // work. Each task returns its entries sorted by key value so
            // the sequential merge below inserts in an order determined by
            // content alone, not thread interleaving.
            let tasks: Vec<(usize, usize)> = shared_keys
                .iter()
                .enumerate()
                .flat_map(|(ki, (_, owners))| (0..owners.len()).map(move |oi| (ki, oi)))
                .collect();
            let hashed: Vec<Vec<(u64, u64)>> = pool.par_map(&tasks, |&(ki, oi)| {
                let (key, owners) = &shared_keys[ki];
                let view = &views[owners[oi]];
                // key value → set of full-row hashes (sorted → stable hash)
                let mut per_value: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
                for r in 0..view.table.row_count() {
                    let kv = key_value_hash(&view.table, r, key);
                    per_value
                        .entry(kv)
                        .or_default()
                        .push(hash_table_row(&view.table, r));
                }
                let mut entries: Vec<(u64, u64)> = per_value
                    .into_iter()
                    .map(|(kv, mut rows)| {
                        rows.sort_unstable();
                        rows.dedup();
                        (kv, fx_hash_u64(&rows))
                    })
                    .collect();
                entries.sort_unstable();
                entries
            });
            let mut cursor = 0usize;
            for (key, owners) in &shared_keys {
                // Tasks were emitted key-major, so this key's owners sit at
                // `hashed[cursor..cursor + owners.len()]` in owner order.
                let per_owner = &hashed[cursor..cursor + owners.len()];
                cursor += owners.len();
                // key value hash → view → row-set hash under that key value.
                let mut index: FxHashMap<u64, Vec<(ViewId, u64)>> = FxHashMap::default();
                for (&vi, entries) in owners.iter().zip(per_owner) {
                    for &(kv, row_set_hash) in entries {
                        index
                            .entry(kv)
                            .or_default()
                            .push((views[vi].id, row_set_hash));
                    }
                }
                // Group views per key value by their row-set hash.
                let mut signals: FxHashSet<Vec<Vec<ViewId>>> = FxHashSet::default();
                for entries in index.values() {
                    if entries.len() < 2 {
                        continue;
                    }
                    let mut groups: FxHashMap<u64, Vec<ViewId>> = FxHashMap::default();
                    for &(vid, rh) in entries {
                        groups.entry(rh).or_default().push(vid);
                    }
                    if groups.len() < 2 {
                        continue;
                    }
                    let mut gs: Vec<Vec<ViewId>> = groups.into_values().collect();
                    for g in &mut gs {
                        g.sort_unstable();
                        g.dedup();
                    }
                    gs.sort();
                    // Label all cross-group pairs contradictory.
                    for (gi, ga) in gs.iter().enumerate() {
                        for gb in &gs[gi + 1..] {
                            for &a in ga {
                                for &b in gb {
                                    graph.label(a, b, Category::Contradictory);
                                }
                            }
                        }
                    }
                    // Merge identical group structures into one signal.
                    if signals.insert(gs.clone()) {
                        contradictions.push(Contradiction {
                            key: key.clone(),
                            groups: gs,
                        });
                    }
                }
            }
        }
        // Deterministic order: most discriminative first (Fig. 2 order).
        contradictions.sort_by(|a, b| {
            b.discrimination()
                .cmp(&a.discrimination())
                .then_with(|| a.key.cmp(&b.key))
                .then_with(|| a.groups.cmp(&b.groups))
        });
        complementary_pairs.sort_by_key(|&(a, b, _)| (a, b));
        Ok(())
    })?;

    Ok(DistillOutput {
        graph,
        view_keys,
        compatible_groups,
        survivors_c1: survivors_c1
            .iter()
            .map(|&i| views[i].id)
            .collect::<Vec<_>>()
            .sorted(),
        survivors_c2: survivors_c2
            .iter()
            .map(|&i| views[i].id)
            .collect::<Vec<_>>()
            .sorted(),
        contradictions,
        complementary_pairs,
        timer,
    })
}

/// Tiny helper: sort-and-return for readability above.
trait Sorted {
    fn sorted(self) -> Self;
}

impl Sorted for Vec<ViewId> {
    fn sorted(mut self) -> Self {
        self.sort_unstable();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_engine::view::Provenance;
    use ver_store::table::TableBuilder;

    /// Build a (state, pop) view from rows.
    fn view(id: u32, rows: &[(&str, i64)]) -> View {
        let mut b = TableBuilder::new("v", &["state", "pop"]);
        for (s, p) in rows {
            b.push_row(vec![Value::text(*s), Value::Int(*p)]).unwrap();
        }
        View::new(ViewId(id), b.build(), Provenance::default())
    }

    #[test]
    fn compatible_views_dedupe_to_one() {
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("GA", 2), ("IN", 1)]), // same rows, different order
            view(2, &[("TX", 3)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        assert_eq!(
            out.graph.get(ViewId(0), ViewId(1)),
            Some(Category::Compatible)
        );
        assert_eq!(out.compatible_groups, vec![vec![ViewId(0), ViewId(1)]]);
        assert_eq!(out.survivors_c1, vec![ViewId(0), ViewId(2)]);
    }

    #[test]
    fn contained_views_keep_the_larger() {
        let views = vec![
            view(0, &[("IN", 1)]),
            view(1, &[("IN", 1), ("GA", 2), ("TX", 3)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        assert_eq!(
            out.graph.get(ViewId(0), ViewId(1)),
            Some(Category::Contained)
        );
        assert_eq!(out.survivors_c2, vec![ViewId(1)]);
    }

    #[test]
    fn containment_chain_keeps_only_largest() {
        let views = vec![
            view(0, &[("IN", 1)]),
            view(1, &[("IN", 1), ("GA", 2)]),
            view(2, &[("IN", 1), ("GA", 2), ("TX", 3)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        assert_eq!(out.survivors_c2, vec![ViewId(2)]);
    }

    #[test]
    fn complementary_views_marked_with_shared_key() {
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("GA", 2), ("TX", 3)]), // overlap on GA row, no conflict
        ];
        let out = distill(&views, &DistillConfig::default());
        assert_eq!(
            out.graph.get(ViewId(0), ViewId(1)),
            Some(Category::Complementary)
        );
        assert_eq!(out.complementary_pairs.len(), 1);
        assert!(out.complementary_pairs[0].2.contains(&Key::single(0)));
        assert!(out.contradictions.is_empty());
    }

    #[test]
    fn contradictory_views_detected_and_upgraded() {
        // Same state key "IN" maps to different pops.
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("IN", 999), ("GA", 2)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        assert_eq!(
            out.graph.get(ViewId(0), ViewId(1)),
            Some(Category::Contradictory)
        );
        assert_eq!(out.contradictions.len(), 1);
        let c = &out.contradictions[0];
        assert_eq!(c.key, Key::single(0));
        assert_eq!(c.view_count(), 2);
        assert_eq!(c.discrimination(), 1);
    }

    #[test]
    fn contradiction_groups_cluster_agreeing_views() {
        // Three views agree (IN,1); one dissents (IN,7).
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("IN", 1), ("TX", 3)]),
            view(2, &[("IN", 1), ("CA", 4)]),
            view(3, &[("IN", 7), ("FL", 5)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        let c = out
            .contradictions
            .iter()
            .find(|c| c.view_count() == 4)
            .expect("4-view contradiction on IN");
        assert_eq!(c.discrimination(), 3);
        assert_eq!(c.groups.len(), 2);
        // All cross pairs are contradictory in G.
        assert_eq!(
            out.graph.get(ViewId(0), ViewId(3)),
            Some(Category::Contradictory)
        );
        assert_eq!(
            out.graph.get(ViewId(2), ViewId(3)),
            Some(Category::Contradictory)
        );
    }

    #[test]
    fn different_schemas_never_compare() {
        let a = view(0, &[("IN", 1)]);
        let mut b = TableBuilder::new("v", &["city", "pop"]);
        b.push_row(vec![Value::text("IN"), Value::Int(1)]).unwrap();
        let b = View::new(ViewId(1), b.build(), Provenance::default());
        let out = distill(&[a, b], &DistillConfig::default());
        assert_eq!(out.graph.get(ViewId(0), ViewId(1)), None);
        assert_eq!(out.survivors_c2.len(), 2);
    }

    #[test]
    fn no_shared_key_means_no_complementary() {
        // Views where no column is a key (all values repeat).
        let mk = |id: u32, rows: &[(&str, i64)]| view(id, rows);
        let views = vec![
            mk(0, &[("A", 1), ("A", 2), ("B", 1)]),
            mk(1, &[("A", 1), ("B", 3), ("B", 1)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        // (state) not unique, (pop) not unique, (state,pop) is unique → both
        // views DO share the composite key; overlap on ("A",1)/("B",1) rows.
        // Under the composite key no key value can disagree (key = whole
        // row), so pairs can be complementary but never contradictory.
        assert!(out.contradictions.is_empty());
    }

    #[test]
    fn timer_records_all_phases() {
        let views = vec![view(0, &[("IN", 1)]), view(1, &[("GA", 2)])];
        let out = distill(&views, &DistillConfig::default());
        let phases: Vec<&str> = out.timer.phases().map(|(p, _)| p).collect();
        assert_eq!(phases, vec!["schema_partition", "hash_c1", "c2", "c3_c4"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out = distill(&[], &DistillConfig::default());
        assert_eq!(out.original_count(), 0);
        assert!(out.survivors_c2.is_empty());
        assert!(out.contradictions.is_empty());
    }

    #[test]
    fn expired_budget_fails_with_deadline_exceeded() {
        use ver_common::error::VerError;
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("IN", 999), ("GA", 2)]),
        ];
        let budget = QueryBudget::none().with_timeout(std::time::Duration::ZERO);
        match distill_budgeted(&views, &DistillConfig::default(), &budget) {
            Err(VerError::DeadlineExceeded(stage)) => {
                assert!(stage.starts_with("distill."), "stage: {stage}")
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_distill_with_headroom_matches_unbudgeted() {
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("IN", 999), ("GA", 2)]),
            view(2, &[("TX", 3)]),
        ];
        let cfg = DistillConfig::default();
        let base = distill(&views, &cfg);
        let budget = QueryBudget::none().with_timeout(std::time::Duration::from_secs(3600));
        let budgeted = distill_budgeted(&views, &cfg, &budget).unwrap();
        assert_eq!(budgeted.survivors_c2, base.survivors_c2);
        assert_eq!(budgeted.contradictions, base.contradictions);
        assert_eq!(budgeted.complementary_pairs, base.complementary_pairs);
    }
}
