//! Distillation strategies: the C1/C2/C3 reductions of Table IV and the
//! contradiction-step pruning of Fig. 2.
//!
//! * **C1** — deduplicate compatible groups (one representative each).
//! * **C2** — keep only the largest of each containment chain.
//! * **C3** — union complementary views; the reduction depends on the
//!   candidate key chosen, so we report the *worst-case* key (least
//!   reduction) and *best-case* key (largest reduction), per the paper.
//! * **C4** — contradictions cannot be resolved automatically; Fig. 2
//!   simulates resolving them one at a time (most discriminative first) and
//!   reports the surviving view count per step, for the best case (the
//!   correct side is the smallest group → maximal pruning) and the worst
//!   case (the largest group → minimal pruning).

use crate::algo::DistillOutput;
use crate::categories::Category;
use crate::hashes::{HashCache, SetRelation};
use crate::keys::Key;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::{FxHashMap, FxHashSet};
use ver_common::ids::ViewId;
use ver_engine::view::View;

/// Which side of a contradiction turns out to be correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseChoice {
    /// The smallest group is correct → prune the most (best case).
    Best,
    /// The largest group is correct → prune the least (worst case).
    Worst,
}

/// The per-query row of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistillCounts {
    /// Views before distillation ("Original").
    pub original: usize,
    /// After compatible dedup ("C1").
    pub c1: usize,
    /// After containment pruning ("C2").
    pub c2: usize,
    /// After complementary union with the worst-case key.
    pub c3_worst: usize,
    /// After complementary union with the best-case key.
    pub c3_best: usize,
}

/// Compute the Table IV counts for one distillation run.
pub fn distill_counts(views: &[View], output: &DistillOutput) -> DistillCounts {
    let (c3_worst, c3_best) = c3_counts(views, output);
    DistillCounts {
        original: output.original_count(),
        c1: output.survivors_c1.len(),
        c2: output.survivors_c2.len(),
        c3_worst,
        c3_best,
    }
}

/// Number of views remaining if complementary views are unioned **under a
/// specific key** within each schema block. Views lacking the key, or pairs
/// contradictory under it, do not union.
pub fn union_complementary(views: &[View], output: &DistillOutput, key: &Key) -> usize {
    let survivors: Vec<&View> = surviving_views(views, output);
    let mut cache = HashCache::new();

    // Pairs contradictory under this key (they must not union).
    let mut conflict: FxHashSet<(ViewId, ViewId)> = FxHashSet::default();
    for c in &output.contradictions {
        if &c.key != key {
            continue;
        }
        for (i, ga) in c.groups.iter().enumerate() {
            for gb in &c.groups[i + 1..] {
                for &a in ga {
                    for &b in gb {
                        conflict.insert((a.min(b), a.max(b)));
                    }
                }
            }
        }
    }

    // Union-find over survivors.
    let mut parent: Vec<usize> = (0..survivors.len()).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }

    for (i, a) in survivors.iter().enumerate() {
        if !output.view_keys[&a.id].contains(key) {
            continue;
        }
        for (j, b) in survivors.iter().enumerate().skip(i + 1) {
            if !output.view_keys[&b.id].contains(key) {
                continue;
            }
            if a.schema_signature() != b.schema_signature() {
                continue;
            }
            if conflict.contains(&(a.id.min(b.id), a.id.max(b.id))) {
                continue;
            }
            if cache.relation(a, b) == SetRelation::Overlap {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    let roots: FxHashSet<usize> = (0..survivors.len()).map(|i| find(&mut parent, i)).collect();
    roots.len()
}

/// `(worst, best)` C3 counts: per schema block, choose the shared key that
/// unions the least (worst) / most (best); blocks without shared keys keep
/// all their views.
pub fn c3_counts(views: &[View], output: &DistillOutput) -> (usize, usize) {
    // Candidate keys = keys shared by ≥ 2 surviving views.
    let survivors: Vec<&View> = surviving_views(views, output);
    let mut key_count: FxHashMap<&Key, usize> = FxHashMap::default();
    for v in &survivors {
        for k in &output.view_keys[&v.id] {
            *key_count.entry(k).or_insert(0) += 1;
        }
    }
    let mut shared: Vec<&Key> = key_count
        .into_iter()
        .filter(|&(_, n)| n >= 2)
        .map(|(k, _)| k)
        .collect();
    shared.sort();

    if shared.is_empty() {
        let n = survivors.len();
        return (n, n);
    }
    let counts: Vec<usize> = shared
        .iter()
        .map(|k| union_complementary(views, output, k))
        .collect();
    let worst = counts.iter().copied().max().unwrap_or(survivors.len());
    let best = counts.iter().copied().min().unwrap_or(survivors.len());
    (worst, best)
}

/// Fig. 2: surviving view counts per contradiction-resolution step.
///
/// Returns `[initial, after step 1, after step 2, ...]`, at most
/// `max_steps` resolution steps. At each step the most discriminative live
/// contradiction is resolved; `case` decides which side is correct.
pub fn contradiction_steps(
    output: &DistillOutput,
    case: CaseChoice,
    max_steps: usize,
) -> Vec<usize> {
    let mut alive: FxHashSet<ViewId> = output.survivors_c2.iter().copied().collect();
    let mut counts = vec![alive.len()];

    for _ in 0..max_steps {
        // Live contradictions: intersect groups with `alive`.
        let mut best_signal: Option<Vec<Vec<ViewId>>> = None;
        let mut best_disc = 0usize;
        for c in &output.contradictions {
            let live: Vec<Vec<ViewId>> = c
                .groups
                .iter()
                .map(|g| {
                    g.iter()
                        .copied()
                        .filter(|v| alive.contains(v))
                        .collect::<Vec<_>>()
                })
                .filter(|g: &Vec<ViewId>| !g.is_empty())
                .collect();
            if live.len() < 2 {
                continue;
            }
            let disc = live.iter().map(Vec::len).max().unwrap_or(0);
            if disc > best_disc {
                best_disc = disc;
                best_signal = Some(live);
            }
        }
        let Some(mut groups) = best_signal else { break };
        groups.sort_by_key(Vec::len);
        let keep = match case {
            CaseChoice::Best => groups.first().cloned().unwrap_or_default(),
            CaseChoice::Worst => groups.last().cloned().unwrap_or_default(),
        };
        for g in &groups {
            if *g == keep {
                continue;
            }
            for v in g {
                alive.remove(v);
            }
        }
        counts.push(alive.len());
    }
    counts
}

/// Views that survived C2, resolved against the view slice.
fn surviving_views<'a>(views: &'a [View], output: &DistillOutput) -> Vec<&'a View> {
    let set: FxHashSet<ViewId> = output.survivors_c2.iter().copied().collect();
    views.iter().filter(|v| set.contains(&v.id)).collect()
}

/// The distilled view list a downstream component (VIEW-PRESENTATION)
/// receives: C2 survivors, each annotated with whether it participates in
/// contradictions (the paper's "categories … shared with the downstream
/// component").
pub fn distilled_views<'a>(views: &'a [View], output: &DistillOutput) -> Vec<&'a View> {
    surviving_views(views, output)
}

/// Count of views that participate in at least one labelled 4C edge of the
/// given category (diagnostics for the harness).
pub fn views_in_category(output: &DistillOutput, cat: Category) -> usize {
    let mut seen: FxHashSet<ViewId> = FxHashSet::default();
    for (a, b, c) in output.graph.edges() {
        if c == cat {
            seen.insert(a);
            seen.insert(b);
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{distill, DistillConfig};
    use ver_common::value::Value;
    use ver_engine::view::Provenance;
    use ver_store::table::TableBuilder;

    fn view(id: u32, rows: &[(&str, i64)]) -> View {
        let mut b = TableBuilder::new("v", &["state", "pop"]);
        for (s, p) in rows {
            b.push_row(vec![Value::text(*s), Value::Int(*p)]).unwrap();
        }
        View::new(ViewId(id), b.build(), Provenance::default())
    }

    #[test]
    fn table_iv_counts_monotone() {
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("GA", 2), ("IN", 1)]), // compatible with 0
            view(2, &[("IN", 1)]),            // contained in 0
            view(3, &[("TX", 3), ("GA", 2)]), // complementary with 0
            view(4, &[("CA", 9), ("NV", 8)]), // disjoint
        ];
        let out = distill(&views, &DistillConfig::default());
        let counts = distill_counts(&views, &out);
        assert_eq!(counts.original, 5);
        assert_eq!(counts.c1, 4);
        assert_eq!(counts.c2, 3);
        assert!(counts.c3_best <= counts.c3_worst);
        assert!(counts.c3_worst <= counts.c2);
        // state key unions {0,3}: 3 views → 2.
        assert_eq!(counts.c3_best, 2);
    }

    #[test]
    fn union_respects_contradictions() {
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("GA", 2), ("IN", 999)]), // overlaps on GA but contradicts on IN
        ];
        let out = distill(&views, &DistillConfig::default());
        let remaining = union_complementary(&views, &out, &Key::single(0));
        assert_eq!(remaining, 2, "contradictory pair must not union");
    }

    #[test]
    fn union_merges_chains_of_complementary_views() {
        let views = vec![
            view(0, &[("A", 1), ("B", 2)]),
            view(1, &[("B", 2), ("C", 3)]),
            view(2, &[("C", 3), ("D", 4)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        let remaining = union_complementary(&views, &out, &Key::single(0));
        assert_eq!(remaining, 1, "chain A-B-C-D unions into one view");
    }

    #[test]
    fn key_choice_changes_reduction() {
        // Under the state key (col 0) views union; under the composite key
        // (0,1) they also overlap... construct a case where pop key exists
        // for only one pair.
        let views = vec![
            view(0, &[("A", 1), ("B", 2)]),
            view(1, &[("B", 2), ("C", 3)]),
            // view 2 has duplicate pops → pop not a key for it
            view(2, &[("C", 5), ("D", 5)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        let (worst, best) = c3_counts(&views, &out);
        assert!(best <= worst);
        assert!(best < 3, "some unioning must happen in the best case");
    }

    #[test]
    fn contradiction_steps_prune_per_case() {
        // Contradiction on IN: {0,1,2} agree vs {3} dissents.
        let views = vec![
            view(0, &[("IN", 1), ("GA", 2)]),
            view(1, &[("IN", 1), ("TX", 3)]),
            view(2, &[("IN", 1), ("CA", 4)]),
            view(3, &[("IN", 7), ("FL", 5)]),
        ];
        let out = distill(&views, &DistillConfig::default());
        let best = contradiction_steps(&out, CaseChoice::Best, 10);
        let worst = contradiction_steps(&out, CaseChoice::Worst, 10);
        assert_eq!(best[0], 4);
        assert_eq!(worst[0], 4);
        // Best case: smallest group {3} is right → prune 3 views → 1 left.
        assert_eq!(best[1], 1);
        // Worst case: {0,1,2} right → prune only view 3 → 3 left.
        assert_eq!(worst[1], 3);
        // Monotone decreasing.
        assert!(best.windows(2).all(|w| w[1] <= w[0]));
        assert!(worst.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn steps_stop_when_no_live_contradictions() {
        let views = vec![view(0, &[("A", 1)]), view(1, &[("B", 2)])];
        let out = distill(&views, &DistillConfig::default());
        let steps = contradiction_steps(&out, CaseChoice::Best, 10);
        assert_eq!(steps, vec![2]);
    }

    #[test]
    fn category_participation_counts() {
        let views = vec![
            view(0, &[("IN", 1)]),
            view(1, &[("IN", 1)]), // compatible
            view(2, &[("IN", 2)]), // contradicts both (but 1 deduped first)
        ];
        let out = distill(&views, &DistillConfig::default());
        assert_eq!(views_in_category(&out, Category::Compatible), 2);
        assert!(views_in_category(&out, Category::Contradictory) >= 2);
    }
}
