//! 4C category labels and the labelled view graph `G` (Problem 3).

use serde::{Deserialize, Serialize};
use std::fmt;
use ver_common::fxhash::FxHashMap;
use ver_common::ids::ViewId;

/// The four 4C categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Same row set (Definition 5).
    Compatible,
    /// One view's rows strictly contain the other's (Definition 6).
    Contained,
    /// Same candidate key, overlapping rows, neither compatible nor
    /// contained (Definition 8).
    Complementary,
    /// Same candidate key, some key value maps to different rows
    /// (Definition 9).
    Contradictory,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Compatible => "compatible",
            Category::Contained => "contained",
            Category::Complementary => "complementary",
            Category::Contradictory => "contradictory",
        };
        write!(f, "{s}")
    }
}

/// The labelled graph `G`: nodes are views, edges carry a 4C category.
///
/// Edges are stored under the normalised `(min, max)` pair. A pair may be
/// relabelled (Algorithm 3 upgrades complementary → contradictory);
/// [`ViewGraph::label`] applies "contradictory wins over complementary"
/// while compatible/contained labels are final.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ViewGraph {
    nodes: Vec<ViewId>,
    edges: FxHashMap<(ViewId, ViewId), Category>,
}

impl ViewGraph {
    /// Graph over the given views, no edges yet (ADD-NODES).
    pub fn new(nodes: Vec<ViewId>) -> Self {
        ViewGraph {
            nodes,
            edges: FxHashMap::default(),
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[ViewId] {
        &self.nodes
    }

    fn key(a: ViewId, b: ViewId) -> (ViewId, ViewId) {
        (a.min(b), a.max(b))
    }

    /// Label the pair. Upgrade rules: contradictory replaces complementary;
    /// compatible/contained are never overwritten.
    pub fn label(&mut self, a: ViewId, b: ViewId, cat: Category) {
        assert_ne!(a, b, "view pairs are distinct");
        let k = Self::key(a, b);
        match self.edges.get(&k) {
            Some(Category::Compatible) | Some(Category::Contained) => {}
            Some(Category::Contradictory) if cat == Category::Complementary => {}
            _ => {
                self.edges.insert(k, cat);
            }
        }
    }

    /// Category of a pair, if labelled.
    pub fn get(&self, a: ViewId, b: ViewId) -> Option<Category> {
        self.edges.get(&Self::key(a, b)).copied()
    }

    /// Number of labelled edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterate `(a, b, category)` with `a < b`, sorted for determinism.
    pub fn edges(&self) -> Vec<(ViewId, ViewId, Category)> {
        let mut v: Vec<_> = self.edges.iter().map(|(&(a, b), &c)| (a, b, c)).collect();
        v.sort_by_key(|&(a, b, _)| (a, b));
        v
    }

    /// Count edges by category.
    pub fn count(&self, cat: Category) -> usize {
        self.edges.values().filter(|&&c| c == cat).count()
    }

    /// Connected components among `subset` using only edges labelled `cat`.
    pub fn components_by_category(&self, subset: &[ViewId], cat: Category) -> Vec<Vec<ViewId>> {
        let idx: FxHashMap<ViewId, usize> =
            subset.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut parent: Vec<usize> = (0..subset.len()).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for (&(a, b), &c) in &self.edges {
            if c != cat {
                continue;
            }
            if let (Some(&i), Some(&j)) = (idx.get(&a), idx.get(&b)) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
        let mut groups: FxHashMap<usize, Vec<ViewId>> = FxHashMap::default();
        for (i, &v) in subset.iter().enumerate() {
            groups.entry(find(&mut parent, i)).or_default().push(v);
        }
        let mut out: Vec<Vec<ViewId>> = groups.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ViewId {
        ViewId(i)
    }

    #[test]
    fn label_normalises_pair_order() {
        let mut g = ViewGraph::new(vec![v(0), v(1)]);
        g.label(v(1), v(0), Category::Compatible);
        assert_eq!(g.get(v(0), v(1)), Some(Category::Compatible));
        assert_eq!(g.get(v(1), v(0)), Some(Category::Compatible));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn contradictory_upgrades_complementary() {
        let mut g = ViewGraph::new(vec![v(0), v(1)]);
        g.label(v(0), v(1), Category::Complementary);
        g.label(v(0), v(1), Category::Contradictory);
        assert_eq!(g.get(v(0), v(1)), Some(Category::Contradictory));
        // ... but not the other way around.
        g.label(v(0), v(1), Category::Complementary);
        assert_eq!(g.get(v(0), v(1)), Some(Category::Contradictory));
    }

    #[test]
    fn compatible_and_contained_are_final() {
        let mut g = ViewGraph::new(vec![v(0), v(1)]);
        g.label(v(0), v(1), Category::Contained);
        g.label(v(0), v(1), Category::Contradictory);
        assert_eq!(g.get(v(0), v(1)), Some(Category::Contained));
    }

    #[test]
    fn category_counting_and_listing() {
        let mut g = ViewGraph::new((0..4).map(v).collect());
        g.label(v(0), v(1), Category::Compatible);
        g.label(v(2), v(3), Category::Complementary);
        g.label(v(0), v(3), Category::Contradictory);
        assert_eq!(g.count(Category::Compatible), 1);
        assert_eq!(g.count(Category::Contained), 0);
        assert_eq!(g.edges().len(), 3);
        assert_eq!(g.edges()[0], (v(0), v(1), Category::Compatible));
    }

    #[test]
    fn components_follow_single_category() {
        let mut g = ViewGraph::new((0..5).map(v).collect());
        g.label(v(0), v(1), Category::Complementary);
        g.label(v(1), v(2), Category::Complementary);
        g.label(v(3), v(4), Category::Contradictory); // different category
        let subset: Vec<ViewId> = (0..5).map(v).collect();
        let comps = g.components_by_category(&subset, Category::Complementary);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![v(0), v(1), v(2)]);
        assert_eq!(comps[1], vec![v(3)]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_edges_rejected() {
        let mut g = ViewGraph::new(vec![v(0)]);
        g.label(v(0), v(0), Category::Compatible);
    }
}
