//! Property-based tests: 4C labels must agree with their set-theoretic
//! definitions for arbitrary view collections.

use proptest::prelude::*;
use ver_common::ids::ViewId;
use ver_common::value::Value;
use ver_distill::strategy::{contradiction_steps, distill_counts, CaseChoice};
use ver_distill::{distill, Category, DistillConfig};
use ver_engine::rowhash::table_hash_set;
use ver_engine::view::{Provenance, View};
use ver_store::table::TableBuilder;

/// A collection of (k, v) views with keys drawn from a small space so
/// overlaps, containments and conflicts all occur.
fn views_strategy(max_views: usize) -> impl Strategy<Value = Vec<View>> {
    prop::collection::vec(
        prop::collection::vec((0..12i64, 0..4i64), 1..14),
        1..max_views,
    )
    .prop_map(|tables| {
        tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let mut b = TableBuilder::new("v", &["k", "x"]);
                for (k, v) in rows {
                    b.push_row(vec![Value::Int(k), Value::Int(v)]).unwrap();
                }
                View::new(ViewId(i as u32), b.build(), Provenance::default())
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn labels_match_set_semantics(views in views_strategy(10)) {
        let out = distill(&views, &DistillConfig::default());
        for (a, b, cat) in out.graph.edges() {
            let va = views.iter().find(|v| v.id == a).unwrap();
            let vb = views.iter().find(|v| v.id == b).unwrap();
            let sa = table_hash_set(&va.table);
            let sb = table_hash_set(&vb.table);
            match cat {
                Category::Compatible => prop_assert_eq!(&sa, &sb),
                Category::Contained => {
                    let (small, large) = if sa.len() < sb.len() { (&sa, &sb) } else { (&sb, &sa) };
                    prop_assert!(small.iter().all(|h| large.contains(h)));
                    prop_assert!(small.len() < large.len());
                }
                Category::Complementary => {
                    // overlapping, neither contained
                    prop_assert!(sa.intersection(&sb).next().is_some());
                    prop_assert!(!sa.iter().all(|h| sb.contains(h)));
                    prop_assert!(!sb.iter().all(|h| sa.contains(h)));
                }
                Category::Contradictory => {
                    // both views carry a shared candidate key
                    prop_assert!(
                        out.view_keys[&a].iter().any(|k| out.view_keys[&b].contains(k))
                    );
                }
            }
        }
    }

    #[test]
    fn funnel_counts_are_monotone(views in views_strategy(12)) {
        let out = distill(&views, &DistillConfig::default());
        let counts = distill_counts(&views, &out);
        prop_assert_eq!(counts.original, views.len());
        prop_assert!(counts.c1 <= counts.original);
        prop_assert!(counts.c2 <= counts.c1);
        prop_assert!(counts.c3_worst <= counts.c2);
        prop_assert!(counts.c3_best <= counts.c3_worst);
        prop_assert!(counts.c3_best >= 1);
    }

    #[test]
    fn distill_is_deterministic(views in views_strategy(8)) {
        let a = distill(&views, &DistillConfig::default());
        let b = distill(&views, &DistillConfig::default());
        prop_assert_eq!(a.survivors_c1.clone(), b.survivors_c1.clone());
        prop_assert_eq!(a.survivors_c2.clone(), b.survivors_c2.clone());
        prop_assert_eq!(a.contradictions.clone(), b.contradictions.clone());
        prop_assert_eq!(a.graph.edges(), b.graph.edges());
    }

    #[test]
    fn contradiction_groups_partition_their_views(views in views_strategy(10)) {
        let out = distill(&views, &DistillConfig::default());
        for c in &out.contradictions {
            prop_assert!(c.groups.len() >= 2);
            let mut seen = std::collections::HashSet::new();
            for g in &c.groups {
                prop_assert!(!g.is_empty());
                for v in g {
                    prop_assert!(seen.insert(*v), "view {v:?} in two groups");
                }
            }
        }
    }

    #[test]
    fn pruning_steps_never_increase(views in views_strategy(10)) {
        let out = distill(&views, &DistillConfig::default());
        for case in [CaseChoice::Best, CaseChoice::Worst] {
            let steps = contradiction_steps(&out, case, 10);
            prop_assert!(steps.windows(2).all(|w| w[1] <= w[0]));
            prop_assert_eq!(steps[0], out.survivors_c2.len());
        }
    }

    #[test]
    fn survivors_are_pairwise_incomparable(views in views_strategy(10)) {
        let out = distill(&views, &DistillConfig::default());
        let survivors: Vec<&View> = views
            .iter()
            .filter(|v| out.survivors_c2.contains(&v.id))
            .collect();
        for (i, a) in survivors.iter().enumerate() {
            for b in &survivors[i + 1..] {
                let sa = table_hash_set(&a.table);
                let sb = table_hash_set(&b.table);
                prop_assert!(sa != sb, "compatible views must not both survive");
                if !sa.is_empty() && !sb.is_empty() {
                    let a_in_b = sa.iter().all(|h| sb.contains(h));
                    let b_in_a = sb.iter().all(|h| sa.contains(h));
                    prop_assert!(!a_in_b && !b_in_a, "contained views must not both survive");
                }
            }
        }
    }
}
