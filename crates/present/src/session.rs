//! Algorithm 2: the VIEW-PRESENTATION interaction loop.
//!
//! Per iteration: estimate each interface's selection probability from
//! `r(I) · χ(I)` (lines 3–7), draw an interface (line 8), ask its best
//! question (line 9), update `r` (line 10), and on a non-skip answer prune
//! irrelevant views and update the ranking (lines 11–12). The loop ends
//! when the user confirms a dataset, one candidate remains, `T` iterations
//! pass, or no interface can produce a question.

use crate::bandit::{Bandit, BanditConfig};
use crate::infogain::info_gain;
use crate::interface::{Answer, InterfaceKind, Prioritization, Question, QuestionFactory};
use crate::ranking::{rank_views, AnsweredQuestion};
use crate::user::SimulatedUser;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::FxHashMap;
use ver_common::ids::ViewId;
use ver_distill::DistillOutput;
use ver_engine::view::View;
use ver_qbe::ExampleQuery;

/// Session tunables.
#[derive(Debug, Clone)]
pub struct PresentationConfig {
    /// Bandit parameters (γ, bootstrap quota).
    pub bandit: BanditConfig,
    /// Maximum interactions `T`.
    pub max_iterations: usize,
    /// Question prioritisation strategy.
    pub prioritization: Prioritization,
    /// RNG seed for arm draws.
    pub seed: u64,
}

impl Default for PresentationConfig {
    fn default() -> Self {
        PresentationConfig {
            bandit: BanditConfig::default(),
            max_iterations: 50,
            prioritization: Prioritization::QueryDistance,
            seed: 0xBAD1,
        }
    }
}

/// How a session ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionOutcome {
    /// The user confirmed a view (dataset-question Yes), or exactly one
    /// candidate remained.
    Found {
        /// The selected view.
        view: ViewId,
        /// Questions asked (including skipped ones).
        interactions: usize,
    },
    /// Iterations exhausted (or no questions left); ranked candidates
    /// remain.
    Exhausted {
        /// Views still alive, best-ranked first.
        ranked: Vec<ViewId>,
        /// Questions asked.
        interactions: usize,
    },
}

impl SessionOutcome {
    /// Interactions used.
    pub fn interactions(&self) -> usize {
        match self {
            SessionOutcome::Found { interactions, .. }
            | SessionOutcome::Exhausted { interactions, .. } => *interactions,
        }
    }

    /// The found view, if any.
    pub fn found_view(&self) -> Option<ViewId> {
        match self {
            SessionOutcome::Found { view, .. } => Some(*view),
            SessionOutcome::Exhausted { .. } => None,
        }
    }
}

/// A live presentation session over a set of candidate views.
pub struct PresentationSession<'a> {
    views: &'a [View],
    factory: QuestionFactory<'a>,
    bandit: Bandit,
    alive: Vec<ViewId>,
    history: Vec<AnsweredQuestion>,
    rng: StdRng,
    config: PresentationConfig,
    base_scores: FxHashMap<ViewId, f64>,
}

impl<'a> PresentationSession<'a> {
    /// Create a session over the distilled candidate views.
    pub fn new(
        views: &'a [View],
        distill: &'a DistillOutput,
        query: &ExampleQuery,
        config: PresentationConfig,
    ) -> Self {
        let alive: Vec<ViewId> = distill.survivors_c2.clone();
        let factory = QuestionFactory::new(views, distill, query, config.prioritization);
        let bandit = Bandit::new(InterfaceKind::all().to_vec(), config.bandit.clone());
        let base_scores = views
            .iter()
            .map(|v| (v.id, v.provenance.join_score))
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        PresentationSession {
            views,
            factory,
            bandit,
            alive,
            history: Vec::new(),
            rng,
            config,
            base_scores,
        }
    }

    /// Candidate views still alive.
    pub fn alive(&self) -> &[ViewId] {
        &self.alive
    }

    /// Current ranking (Section IV-B), best first.
    pub fn ranking(&self) -> Vec<(ViewId, f64)> {
        rank_views(&self.alive, &self.history, |v| {
            self.base_scores.get(&v).copied().unwrap_or(0.0)
        })
    }

    /// Run the loop against a (simulated) user.
    pub fn run(&mut self, user: &mut dyn SimulatedUser) -> SessionOutcome {
        let mut interactions = 0usize;
        for _ in 0..self.config.max_iterations {
            if self.alive.len() <= 1 {
                break;
            }
            // Lines 3-7: per-arm expected gains.
            let arms = InterfaceKind::all();
            let questions: Vec<Option<Question>> = arms
                .iter()
                .map(|&k| self.factory.question(k, &self.alive))
                .collect();
            let gains: Vec<f64> = questions
                .iter()
                .map(|q| {
                    q.as_ref()
                        .map(|q| info_gain(q, self.alive.len()) as f64)
                        .unwrap_or(0.0)
                })
                .collect();
            if gains.iter().all(|&g| g <= 0.0) {
                break; // no informative question remains
            }

            // Line 8: draw an interface (re-draw onto an available one).
            let mut kind = self.bandit.choose(&gains, &mut self.rng);
            if questions[arm_index(kind)].is_none() {
                // Arm has no question; fall back to best available arm.
                let best = (0..arms.len())
                    .filter(|&i| questions[i].is_some())
                    .max_by(|&a, &b| gains[a].partial_cmp(&gains[b]).expect("finite"));
                match best {
                    Some(i) => kind = arms[i],
                    None => break,
                }
            }
            let question = questions[arm_index(kind)].clone().expect("checked above");

            // Line 9: ask.
            interactions += 1;
            let answer = user.answer(&question, self.views);

            // Line 10: update r(I).
            self.bandit.record(kind, answer != Answer::Skip);

            // Lines 11-12: apply the response.
            if answer == Answer::Skip {
                continue;
            }
            if let Some(found) = self.apply(&question, answer) {
                return SessionOutcome::Found {
                    view: found,
                    interactions,
                };
            }
        }

        if self.alive.len() == 1 {
            return SessionOutcome::Found {
                view: self.alive[0],
                interactions,
            };
        }
        SessionOutcome::Exhausted {
            ranked: self.ranking().into_iter().map(|(v, _)| v).collect(),
            interactions,
        }
    }

    /// Apply an answer: prune irrelevant views, record ranking evidence.
    /// Returns a view when the user confirmed it.
    fn apply(&mut self, question: &Question, answer: Answer) -> Option<ViewId> {
        let answer_prob = self.bandit.answer_rate(question.interface());
        let all: Vec<ViewId> = self.alive.clone();
        let mut approved: Vec<ViewId> = Vec::new();
        let mut rejected: Vec<ViewId> = Vec::new();

        match (question, answer) {
            (Question::Dataset { view }, Answer::Yes) => {
                return Some(*view);
            }
            (Question::Dataset { view }, Answer::No) => {
                rejected.push(*view);
            }
            (Question::Attribute { with_attribute, .. }, Answer::Yes) => {
                approved = with_attribute.clone();
                rejected = all
                    .iter()
                    .copied()
                    .filter(|v| !with_attribute.contains(v))
                    .collect();
            }
            (Question::Attribute { with_attribute, .. }, Answer::No) => {
                rejected = with_attribute.clone();
            }
            (
                Question::DatasetPair {
                    agree_a, agree_b, ..
                },
                Answer::PickFirst,
            ) => {
                approved = agree_a.clone();
                rejected = agree_b.clone();
            }
            (
                Question::DatasetPair {
                    agree_a, agree_b, ..
                },
                Answer::PickSecond,
            ) => {
                approved = agree_b.clone();
                rejected = agree_a.clone();
            }
            (Question::Summary { group, .. }, Answer::Yes) => {
                approved = group.clone();
                rejected = all.iter().copied().filter(|v| !group.contains(v)).collect();
            }
            (Question::Summary { group, .. }, Answer::No) => {
                rejected = group.clone();
            }
            // Pick answers on non-pair questions (or vice versa) are
            // treated as skips by construction; Skip handled by caller.
            _ => {}
        }

        self.alive.retain(|v| !rejected.contains(v));
        self.history.push(AnsweredQuestion {
            approved,
            rejected,
            answer_prob,
        });
        None
    }
}

fn arm_index(kind: InterfaceKind) -> usize {
    InterfaceKind::all()
        .iter()
        .position(|&k| k == kind)
        .expect("kind is one of the four arms")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::{OracleUser, PersonaUser};
    use ver_common::value::Value;
    use ver_distill::{distill, DistillConfig};
    use ver_engine::view::Provenance;
    use ver_store::table::TableBuilder;

    fn view(id: u32, cols: &[&str], rows: &[(&str, i64)]) -> View {
        let mut b = TableBuilder::new("v", cols);
        for (s, p) in rows {
            b.push_row(vec![Value::text(*s), Value::Int(*p)]).unwrap();
        }
        View::new(ViewId(id), b.build(), Provenance::default())
    }

    /// Six distinct views across two schemas, with one contradiction.
    fn fixture() -> (Vec<View>, ExampleQuery) {
        let views = vec![
            view(0, &["state", "pop"], &[("IN", 1), ("GA", 2)]),
            view(1, &["state", "pop"], &[("IN", 9), ("GA", 2)]),
            view(2, &["state", "pop"], &[("TX", 3), ("CA", 4)]),
            view(3, &["state", "births"], &[("IN", 5), ("TX", 6)]),
            view(4, &["state", "births"], &[("GA", 7), ("FL", 8)]),
            view(5, &["state", "births"], &[("WA", 9), ("OR", 10)]),
        ];
        let q = ExampleQuery::from_rows(&[vec!["IN", "1"], vec!["GA", "2"]]).unwrap();
        (views, q)
    }

    #[test]
    fn oracle_finds_target_quickly() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let mut session = PresentationSession::new(&views, &d, &q, PresentationConfig::default());
        let mut user = OracleUser::new(ViewId(0));
        let outcome = session.run(&mut user);
        assert_eq!(outcome.found_view(), Some(ViewId(0)));
        assert!(outcome.interactions() <= 10);
    }

    #[test]
    fn every_target_is_reachable() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        for target in 0..6u32 {
            let mut session =
                PresentationSession::new(&views, &d, &q, PresentationConfig::default());
            let mut user = OracleUser::new(ViewId(target));
            let outcome = session.run(&mut user);
            assert_eq!(
                outcome.found_view(),
                Some(ViewId(target)),
                "target {target} not found: {outcome:?}"
            );
        }
    }

    #[test]
    fn always_skipping_user_exhausts_without_pruning() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let config = PresentationConfig {
            max_iterations: 5,
            ..Default::default()
        };
        let mut session = PresentationSession::new(&views, &d, &q, config);
        let mut user = PersonaUser::uniform(ViewId(0), 0.0, 0.0, 3);
        let outcome = session.run(&mut user);
        match outcome {
            SessionOutcome::Exhausted {
                ranked,
                interactions,
            } => {
                assert_eq!(ranked.len(), 6, "skips must not prune (design principle)");
                assert_eq!(interactions, 5);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn ranking_reflects_answers() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let mut session = PresentationSession::new(
            &views,
            &d,
            &q,
            PresentationConfig {
                max_iterations: 3,
                ..Default::default()
            },
        );
        let mut user = OracleUser::new(ViewId(3));
        let _ = session.run(&mut user);
        let ranking = session.ranking();
        // All alive views are ranked, scores descending.
        assert!(ranking.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn deterministic_given_seed() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let run = |seed: u64| {
            let config = PresentationConfig {
                seed,
                ..Default::default()
            };
            let mut s = PresentationSession::new(&views, &d, &q, config);
            let mut u = OracleUser::new(ViewId(4));
            s.run(&mut u)
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn single_candidate_short_circuits() {
        let views = vec![view(0, &["state", "pop"], &[("IN", 1)])];
        let q = ExampleQuery::from_rows(&[vec!["IN", "1"]]).unwrap();
        let d = distill(&views, &DistillConfig::default());
        let mut session = PresentationSession::new(&views, &d, &q, PresentationConfig::default());
        let mut user = OracleUser::new(ViewId(0));
        let outcome = session.run(&mut user);
        assert_eq!(
            outcome,
            SessionOutcome::Found {
                view: ViewId(0),
                interactions: 0
            }
        );
    }

    #[test]
    fn erroneous_users_can_prune_the_target_but_session_terminates() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let mut session = PresentationSession::new(&views, &d, &q, PresentationConfig::default());
        let mut user = PersonaUser::uniform(ViewId(0), 1.0, 1.0, 5);
        let outcome = session.run(&mut user);
        // With 100% error the session still terminates in bounded steps.
        assert!(outcome.interactions() <= 50);
    }
}
