//! Simulated users — the substitution for the paper's 18-participant IRB
//! user study (see DESIGN.md §2).
//!
//! [`OracleUser`] answers every question correctly with respect to a known
//! target view (the paper's §VI-C1 "we simulated the user to answer
//! questions correctly"). [`PersonaUser`] adds the behaviours the real
//! study observed: users can answer only some interfaces (per-interface
//! answer probabilities → skips), and occasionally answer wrong.

use crate::interface::{Answer, InterfaceKind, Question};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use ver_common::fxhash::FxHashMap;
use ver_common::ids::ViewId;
use ver_engine::view::View;

/// A user that can be asked questions during a presentation session.
pub trait SimulatedUser {
    /// Answer (or skip) a question. `views` carries the full view list so
    /// the user can inspect what is being shown.
    fn answer(&mut self, question: &Question, views: &[View]) -> Answer;
}

/// A user that knows exactly which view they want and answers correctly.
#[derive(Debug, Clone)]
pub struct OracleUser {
    /// The view the user is looking for.
    pub target: ViewId,
}

impl OracleUser {
    /// Oracle for `target`.
    pub fn new(target: ViewId) -> Self {
        OracleUser { target }
    }

    fn correct_answer(&self, question: &Question, views: &[View]) -> Answer {
        match question {
            Question::Dataset { view } => {
                if *view == self.target {
                    Answer::Yes
                } else {
                    Answer::No
                }
            }
            Question::Attribute {
                with_attribute,
                name,
            } => {
                // The user wants the attribute iff their target view has it.
                let has = with_attribute.contains(&self.target)
                    || views.iter().any(|v| {
                        v.id == self.target
                            && v.attribute_names()
                                .iter()
                                .any(|n| n.eq_ignore_ascii_case(name))
                    });
                if has {
                    Answer::Yes
                } else {
                    Answer::No
                }
            }
            Question::DatasetPair {
                agree_a, agree_b, ..
            } => {
                if agree_a.contains(&self.target) {
                    Answer::PickFirst
                } else if agree_b.contains(&self.target) {
                    Answer::PickSecond
                } else {
                    // Neither side involves the target — unanswerable.
                    Answer::Skip
                }
            }
            Question::Summary { group, .. } => {
                if group.contains(&self.target) {
                    Answer::Yes
                } else {
                    Answer::No
                }
            }
        }
    }
}

impl SimulatedUser for OracleUser {
    fn answer(&mut self, question: &Question, views: &[View]) -> Answer {
        self.correct_answer(question, views)
    }
}

/// A stochastic persona: per-interface answer probabilities, an error rate,
/// and a seeded RNG. Models the paper's observation that "different users
/// preferred different interface designs".
#[derive(Debug, Clone)]
pub struct PersonaUser {
    oracle: OracleUser,
    /// Probability of answering (vs skipping) per interface.
    pub answer_prob: FxHashMap<InterfaceKind, f64>,
    /// Probability an answered question gets the wrong answer.
    pub error_rate: f64,
    rng: StdRng,
}

impl PersonaUser {
    /// Persona targeting `target` with uniform `answer_prob` per interface.
    pub fn uniform(target: ViewId, answer_prob: f64, error_rate: f64, seed: u64) -> Self {
        let probs = InterfaceKind::all()
            .into_iter()
            .map(|k| (k, answer_prob))
            .collect();
        PersonaUser {
            oracle: OracleUser::new(target),
            answer_prob: probs,
            error_rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Persona with explicit per-interface probabilities.
    pub fn with_profile(
        target: ViewId,
        answer_prob: FxHashMap<InterfaceKind, f64>,
        error_rate: f64,
        seed: u64,
    ) -> Self {
        PersonaUser {
            oracle: OracleUser::new(target),
            answer_prob,
            error_rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn flip(answer: Answer) -> Answer {
        match answer {
            Answer::Yes => Answer::No,
            Answer::No => Answer::Yes,
            Answer::PickFirst => Answer::PickSecond,
            Answer::PickSecond => Answer::PickFirst,
            Answer::Skip => Answer::Skip,
        }
    }
}

impl SimulatedUser for PersonaUser {
    fn answer(&mut self, question: &Question, views: &[View]) -> Answer {
        let kind = question.interface();
        let p = self.answer_prob.get(&kind).copied().unwrap_or(1.0);
        if self.rng.gen::<f64>() >= p {
            return Answer::Skip;
        }
        let correct = self.oracle.correct_answer(question, views);
        if correct != Answer::Skip && self.rng.gen::<f64>() < self.error_rate {
            Self::flip(correct)
        } else {
            correct
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ViewId {
        ViewId(i)
    }

    #[test]
    fn oracle_answers_dataset_correctly() {
        let mut u = OracleUser::new(v(3));
        assert_eq!(
            u.answer(&Question::Dataset { view: v(3) }, &[]),
            Answer::Yes
        );
        assert_eq!(u.answer(&Question::Dataset { view: v(1) }, &[]), Answer::No);
    }

    #[test]
    fn oracle_picks_its_side_of_a_pair() {
        let mut u = OracleUser::new(v(2));
        let q = Question::DatasetPair {
            a: v(0),
            b: v(1),
            agree_a: vec![v(0), v(2)],
            agree_b: vec![v(1)],
        };
        assert_eq!(u.answer(&q, &[]), Answer::PickFirst);
        let q = Question::DatasetPair {
            a: v(0),
            b: v(1),
            agree_a: vec![v(0)],
            agree_b: vec![v(1)],
        };
        assert_eq!(u.answer(&q, &[]), Answer::Skip, "target not involved");
    }

    #[test]
    fn oracle_answers_attribute_and_summary_by_membership() {
        let mut u = OracleUser::new(v(5));
        let q = Question::Attribute {
            name: "pop".into(),
            with_attribute: vec![v(5), v(6)],
        };
        assert_eq!(u.answer(&q, &[]), Answer::Yes);
        let q = Question::Summary {
            terms: vec![],
            group: vec![v(1)],
        };
        assert_eq!(u.answer(&q, &[]), Answer::No);
    }

    #[test]
    fn persona_with_zero_answer_prob_always_skips() {
        let mut u = PersonaUser::uniform(v(0), 0.0, 0.0, 42);
        for _ in 0..10 {
            assert_eq!(
                u.answer(&Question::Dataset { view: v(0) }, &[]),
                Answer::Skip
            );
        }
    }

    #[test]
    fn persona_with_full_error_rate_always_flips() {
        let mut u = PersonaUser::uniform(v(0), 1.0, 1.0, 42);
        assert_eq!(u.answer(&Question::Dataset { view: v(0) }, &[]), Answer::No);
        assert_eq!(
            u.answer(&Question::Dataset { view: v(9) }, &[]),
            Answer::Yes
        );
    }

    #[test]
    fn persona_is_deterministic_per_seed() {
        let q = Question::Dataset { view: v(0) };
        let run = |seed: u64| -> Vec<Answer> {
            let mut u = PersonaUser::uniform(v(0), 0.5, 0.1, seed);
            (0..20).map(|_| u.answer(&q, &[])).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn per_interface_profiles_apply() {
        let mut probs = FxHashMap::default();
        probs.insert(InterfaceKind::Dataset, 1.0);
        probs.insert(InterfaceKind::Summary, 0.0);
        let mut u = PersonaUser::with_profile(v(0), probs, 0.0, 1);
        assert_eq!(
            u.answer(&Question::Dataset { view: v(0) }, &[]),
            Answer::Yes
        );
        assert_eq!(
            u.answer(
                &Question::Summary {
                    terms: vec![],
                    group: vec![v(0)]
                },
                &[]
            ),
            Answer::Skip
        );
    }
}
