//! Question interfaces and question generation.
//!
//! Ver supports four interface designs (Section IV "Question Interface"):
//!
//! * **Dataset** — show one candidate view: "does it satisfy your need?"
//! * **Attribute** — show one attribute: "should it be in the output?"
//! * **Dataset pair** — show two views and ask the user to pick one; this
//!   interface leverages the 4C categorisation (contradictory /
//!   complementary pairs are the informative ones).
//! * **Summary** — show a word-cloud style summary of a set of views:
//!   "is this group relevant?"
//!
//! Question generation is driven by the current candidate set, the 4C graph
//! and the input query; candidates are ordered by one of two prioritisation
//! strategies (distance of the question, or of its dataset schema, from the
//! query — we use lexical distance as the offline word2vec substitute).

use crate::wordcloud::wordcloud_terms;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::{FxHashMap, FxHashSet};
use ver_common::ids::ViewId;
use ver_common::text::lexical_distance;
use ver_distill::DistillOutput;
use ver_engine::view::View;
use ver_qbe::ExampleQuery;

/// The four interface designs (bandit arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterfaceKind {
    /// Show a single candidate view.
    Dataset,
    /// Show a single attribute name.
    Attribute,
    /// Show a pair of views (4C-informed).
    DatasetPair,
    /// Show a word-cloud summary of a view group.
    Summary,
}

impl InterfaceKind {
    /// All interfaces in display order.
    pub fn all() -> [InterfaceKind; 4] {
        [
            InterfaceKind::Dataset,
            InterfaceKind::Attribute,
            InterfaceKind::DatasetPair,
            InterfaceKind::Summary,
        ]
    }
}

/// How to order candidate questions within an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Prioritization {
    /// Distance of the question text from the input query.
    QueryDistance,
    /// Distance of the question's dataset schema from the input query.
    SchemaDistance,
}

/// A concrete question shown to the user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Question {
    /// "Does view `view` satisfy your requirement?"
    Dataset {
        /// The view shown.
        view: ViewId,
    },
    /// "Should attribute `name` appear in the output?"
    Attribute {
        /// Attribute display name.
        name: String,
        /// Views whose schema carries the attribute.
        with_attribute: Vec<ViewId>,
    },
    /// "Which of these two views is right?" (4C-informed)
    DatasetPair {
        /// First view.
        a: ViewId,
        /// Second view.
        b: ViewId,
        /// Views that agree with `a` (same contradiction side), incl. `a`.
        agree_a: Vec<ViewId>,
        /// Views that agree with `b`, incl. `b`.
        agree_b: Vec<ViewId>,
    },
    /// "Is this group of views relevant?" with word-cloud terms.
    Summary {
        /// Top summary terms.
        terms: Vec<String>,
        /// The summarised views.
        group: Vec<ViewId>,
    },
}

impl Question {
    /// The interface the question belongs to.
    pub fn interface(&self) -> InterfaceKind {
        match self {
            Question::Dataset { .. } => InterfaceKind::Dataset,
            Question::Attribute { .. } => InterfaceKind::Attribute,
            Question::DatasetPair { .. } => InterfaceKind::DatasetPair,
            Question::Summary { .. } => InterfaceKind::Summary,
        }
    }
}

/// A user's reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Answer {
    /// Affirmative (dataset satisfies / attribute wanted / group relevant).
    Yes,
    /// Negative.
    No,
    /// Pick the first view of a pair.
    PickFirst,
    /// Pick the second view of a pair.
    PickSecond,
    /// The user cannot answer this question (Ver adapts — Section IV).
    Skip,
}

/// Generates candidate questions from the current state.
pub struct QuestionFactory<'a> {
    views: &'a [View],
    distill: &'a DistillOutput,
    query_text: String,
    prioritization: Prioritization,
}

impl<'a> QuestionFactory<'a> {
    /// Create a factory for a presentation session.
    pub fn new(
        views: &'a [View],
        distill: &'a DistillOutput,
        query: &ExampleQuery,
        prioritization: Prioritization,
    ) -> Self {
        QuestionFactory {
            views,
            distill,
            query_text: query.all_example_strings().join(" "),
            prioritization,
        }
    }

    fn view(&self, id: ViewId) -> Option<&View> {
        self.views.iter().find(|v| v.id == id)
    }

    fn view_distance(&self, id: ViewId) -> f64 {
        match self.view(id) {
            Some(v) => {
                let schema = v.attribute_names().join(" ");
                lexical_distance(&schema, &self.query_text)
            }
            None => 1.0,
        }
    }

    /// Best question for `kind` over the `alive` candidate set, or `None`
    /// when the interface has nothing to ask.
    pub fn question(&self, kind: InterfaceKind, alive: &[ViewId]) -> Option<Question> {
        match kind {
            InterfaceKind::Dataset => self.dataset_question(alive),
            InterfaceKind::Attribute => self.attribute_question(alive),
            InterfaceKind::DatasetPair => self.pair_question(alive),
            InterfaceKind::Summary => self.summary_question(alive),
        }
    }

    fn dataset_question(&self, alive: &[ViewId]) -> Option<Question> {
        // Prioritise views by distance to the query (closest first), so the
        // likeliest-relevant dataset is shown first.
        alive
            .iter()
            .copied()
            .min_by(|&a, &b| {
                self.view_distance(a)
                    .partial_cmp(&self.view_distance(b))
                    .expect("distances are finite")
                    .then(a.cmp(&b))
            })
            .map(|view| Question::Dataset { view })
    }

    fn attribute_question(&self, alive: &[ViewId]) -> Option<Question> {
        // Candidate attributes = names appearing in some but not all alive
        // views (otherwise the answer prunes nothing).
        let mut by_attr: FxHashMap<String, Vec<ViewId>> = FxHashMap::default();
        for &vid in alive {
            if let Some(v) = self.view(vid) {
                let names: FxHashSet<String> = v
                    .attribute_names()
                    .into_iter()
                    .map(|n| n.to_lowercase())
                    .collect();
                for n in names {
                    by_attr.entry(n).or_default().push(vid);
                }
            }
        }
        let n = alive.len();
        let mut candidates: Vec<(String, Vec<ViewId>)> = by_attr
            .into_iter()
            .filter(|(_, vs)| !vs.is_empty() && vs.len() < n)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // Max info gain = max(|with|, n − |with|); tie-break by the chosen
        // prioritisation distance, then lexicographically.
        candidates.sort_by(|a, b| {
            let gain = |vs: &Vec<ViewId>| vs.len().max(n - vs.len());
            gain(&b.1).cmp(&gain(&a.1)).then_with(|| {
                let da = self.term_distance(&a.0, &a.1);
                let db = self.term_distance(&b.0, &b.1);
                da.partial_cmp(&db).expect("finite").then(a.0.cmp(&b.0))
            })
        });
        let (name, mut with) = candidates.swap_remove(0);
        with.sort_unstable();
        Some(Question::Attribute {
            name,
            with_attribute: with,
        })
    }

    fn term_distance(&self, term: &str, views: &[ViewId]) -> f64 {
        match self.prioritization {
            Prioritization::QueryDistance => lexical_distance(term, &self.query_text),
            Prioritization::SchemaDistance => {
                views.first().map(|&v| self.view_distance(v)).unwrap_or(1.0)
            }
        }
    }

    fn pair_question(&self, alive: &[ViewId]) -> Option<Question> {
        let alive_set: FxHashSet<ViewId> = alive.iter().copied().collect();
        // Most discriminative live contradiction (4C signal).
        let mut best: Option<(usize, Vec<ViewId>, Vec<ViewId>)> = None;
        for c in &self.distill.contradictions {
            let live: Vec<Vec<ViewId>> = c
                .groups
                .iter()
                .map(|g| {
                    g.iter()
                        .copied()
                        .filter(|v| alive_set.contains(v))
                        .collect::<Vec<_>>()
                })
                .filter(|g: &Vec<ViewId>| !g.is_empty())
                .collect();
            if live.len() < 2 {
                continue;
            }
            let mut sorted = live;
            sorted.sort_by_key(|g| std::cmp::Reverse(g.len()));
            let gain = sorted[1].len().max(sorted[0].len());
            if best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
                best = Some((gain, sorted[0].clone(), sorted[1].clone()));
            }
        }
        if let Some((_, ga, gb)) = best {
            return Some(Question::DatasetPair {
                a: ga[0],
                b: gb[0],
                agree_a: ga,
                agree_b: gb,
            });
        }
        // Fall back to a complementary pair (union candidates).
        for &(a, b, _) in &self.distill.complementary_pairs {
            if alive_set.contains(&a) && alive_set.contains(&b) {
                return Some(Question::DatasetPair {
                    a,
                    b,
                    agree_a: vec![a],
                    agree_b: vec![b],
                });
            }
        }
        None
    }

    fn summary_question(&self, alive: &[ViewId]) -> Option<Question> {
        if alive.len() < 2 {
            return None;
        }
        // Group alive views by schema signature; summarise the largest
        // strict-subset group (asking about all views prunes nothing).
        let mut groups: FxHashMap<String, Vec<ViewId>> = FxHashMap::default();
        for &vid in alive {
            if let Some(v) = self.view(vid) {
                groups.entry(v.schema_signature()).or_default().push(vid);
            }
        }
        let mut groups: Vec<Vec<ViewId>> = groups
            .into_values()
            .filter(|g| g.len() < alive.len())
            .collect();
        if groups.is_empty() {
            // Single schema: summarise half the views (split by id order).
            let mut sorted: Vec<ViewId> = alive.to_vec();
            sorted.sort_unstable();
            let half = sorted.len() / 2;
            if half == 0 {
                return None;
            }
            groups.push(sorted.into_iter().take(half).collect());
        }
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        let mut group = groups.swap_remove(0);
        group.sort_unstable();
        let members: Vec<&View> = group.iter().filter_map(|&id| self.view(id)).collect();
        let terms = wordcloud_terms(&members, 8);
        Some(Question::Summary { terms, group })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_distill::{distill, DistillConfig};
    use ver_engine::view::Provenance;
    use ver_store::table::TableBuilder;

    fn view(id: u32, cols: &[&str], rows: &[(&str, i64)]) -> View {
        let mut b = TableBuilder::new("v", cols);
        for (s, p) in rows {
            b.push_row(vec![Value::text(*s), Value::Int(*p)]).unwrap();
        }
        View::new(ViewId(id), b.build(), Provenance::default())
    }

    fn fixture() -> (Vec<View>, ExampleQuery) {
        let views = vec![
            view(0, &["state", "pop"], &[("IN", 1), ("GA", 2)]),
            view(1, &["state", "pop"], &[("IN", 9), ("GA", 2)]), // contradicts 0 on IN
            view(2, &["state", "births"], &[("IN", 5), ("TX", 6)]),
        ];
        let q = ExampleQuery::from_rows(&[vec!["IN", "1"], vec!["GA", "2"]]).unwrap();
        (views, q)
    }

    #[test]
    fn dataset_question_prefers_query_adjacent_views() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let f = QuestionFactory::new(&views, &d, &q, Prioritization::QueryDistance);
        let alive: Vec<ViewId> = views.iter().map(|v| v.id).collect();
        let q = f.question(InterfaceKind::Dataset, &alive).unwrap();
        assert!(matches!(q, Question::Dataset { .. }));
    }

    #[test]
    fn attribute_question_splits_candidates() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let f = QuestionFactory::new(&views, &d, &q, Prioritization::QueryDistance);
        let alive: Vec<ViewId> = views.iter().map(|v| v.id).collect();
        let Question::Attribute {
            name,
            with_attribute,
        } = f.question(InterfaceKind::Attribute, &alive).unwrap()
        else {
            panic!("expected attribute question");
        };
        // "pop" (2/3 views) or "births" (1/3): both gain 2; names differ.
        assert!(name == "pop" || name == "births");
        assert!(!with_attribute.is_empty() && with_attribute.len() < 3);
    }

    #[test]
    fn attribute_question_none_when_all_schemas_equal() {
        let views = vec![
            view(0, &["state", "pop"], &[("IN", 1)]),
            view(1, &["state", "pop"], &[("GA", 2)]),
        ];
        let q = ExampleQuery::from_rows(&[vec!["IN", "1"]]).unwrap();
        let d = distill(&views, &DistillConfig::default());
        let f = QuestionFactory::new(&views, &d, &q, Prioritization::QueryDistance);
        let alive: Vec<ViewId> = views.iter().map(|v| v.id).collect();
        assert!(f.question(InterfaceKind::Attribute, &alive).is_none());
    }

    #[test]
    fn pair_question_uses_contradictions() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        assert!(!d.contradictions.is_empty(), "fixture has a contradiction");
        let f = QuestionFactory::new(&views, &d, &q, Prioritization::QueryDistance);
        let alive: Vec<ViewId> = views.iter().map(|v| v.id).collect();
        let Question::DatasetPair { a, b, .. } =
            f.question(InterfaceKind::DatasetPair, &alive).unwrap()
        else {
            panic!("expected pair question");
        };
        assert_ne!(a, b);
        assert!([a, b].contains(&ViewId(0)) && [a, b].contains(&ViewId(1)));
    }

    #[test]
    fn summary_question_covers_a_strict_subset() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let f = QuestionFactory::new(&views, &d, &q, Prioritization::SchemaDistance);
        let alive: Vec<ViewId> = views.iter().map(|v| v.id).collect();
        let Question::Summary { terms, group } =
            f.question(InterfaceKind::Summary, &alive).unwrap()
        else {
            panic!("expected summary question");
        };
        assert!(!terms.is_empty());
        assert!(!group.is_empty() && group.len() < alive.len());
    }

    #[test]
    fn questions_respect_alive_subset() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let f = QuestionFactory::new(&views, &d, &q, Prioritization::QueryDistance);
        // Only view 2 alive: no pair question possible.
        assert!(f
            .question(InterfaceKind::DatasetPair, &[ViewId(2)])
            .is_none());
        let dq = f.question(InterfaceKind::Dataset, &[ViewId(2)]).unwrap();
        assert_eq!(dq, Question::Dataset { view: ViewId(2) });
    }

    #[test]
    fn empty_alive_set_yields_no_questions() {
        let (views, q) = fixture();
        let d = distill(&views, &DistillConfig::default());
        let f = QuestionFactory::new(&views, &d, &q, Prioritization::QueryDistance);
        for kind in InterfaceKind::all() {
            assert!(f.question(kind, &[]).is_none(), "{kind:?}");
        }
    }
}
