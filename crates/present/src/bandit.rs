//! The Exp3-flavoured interface chooser (Section IV-A).
//!
//! Each question interface is an arm. The probability of choosing arm `I`
//! is
//!
//! ```text
//! p(I) = (1 − γ) · w(I)/Σ_J w(J) + γ/|ℐ|
//! ```
//!
//! with `w(I) = r(I) · χ(I)`: `r(I)` the estimated likelihood the user
//! answers a question on that interface (a Laplace-smoothed answer rate —
//! the paper bootstraps it with `O(log |ℐ|)` questions per interface, which
//! a Chernoff bound shows suffices for an accurate estimate), and `χ(I)`
//! the information gain of the interface's best question.

use crate::interface::InterfaceKind;
use rand::rngs::StdRng;
use rand::Rng;
use ver_common::fxhash::FxHashMap;

/// Bandit configuration.
#[derive(Debug, Clone)]
pub struct BanditConfig {
    /// Exploration factor γ ∈ [0, 1]. γ=1 ⇒ uniform random arms;
    /// γ=0 ⇒ purely reward-driven.
    pub gamma: f64,
    /// Bootstrap questions per arm before switching to weighted draws
    /// (defaults to ⌈log₂ |ℐ|⌉ — the paper's `O(log |I|)`).
    pub bootstrap_per_arm: usize,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            gamma: 0.1,
            // ⌈log₂ 4⌉ = 2 for the four interfaces.
            bootstrap_per_arm: 2,
        }
    }
}

/// Multi-arm bandit over question interfaces.
#[derive(Debug, Clone)]
pub struct Bandit {
    config: BanditConfig,
    arms: Vec<InterfaceKind>,
    asked: FxHashMap<InterfaceKind, usize>,
    answered: FxHashMap<InterfaceKind, usize>,
}

impl Bandit {
    /// Bandit over the given arms.
    pub fn new(arms: Vec<InterfaceKind>, config: BanditConfig) -> Self {
        assert!(!arms.is_empty(), "bandit needs at least one arm");
        Bandit {
            config,
            arms,
            asked: FxHashMap::default(),
            answered: FxHashMap::default(),
        }
    }

    /// r(I): Laplace-smoothed probability the user answers on `arm`.
    pub fn answer_rate(&self, arm: InterfaceKind) -> f64 {
        let asked = self.asked.get(&arm).copied().unwrap_or(0) as f64;
        let answered = self.answered.get(&arm).copied().unwrap_or(0) as f64;
        (answered + 1.0) / (asked + 2.0)
    }

    /// True while some arm still needs bootstrap questions.
    pub fn in_bootstrap(&self) -> bool {
        self.arms
            .iter()
            .any(|a| self.asked.get(a).copied().unwrap_or(0) < self.config.bootstrap_per_arm)
    }

    /// Current selection probabilities for arms with the given gains
    /// (`gains[i]` is χ of `arms[i]`; arms with zero gain — no question
    /// available — get zero weight but still receive the γ floor).
    pub fn probabilities(&self, gains: &[f64]) -> Vec<f64> {
        assert_eq!(gains.len(), self.arms.len());
        let weights: Vec<f64> = self
            .arms
            .iter()
            .zip(gains)
            .map(|(&a, &g)| self.answer_rate(a) * g.max(0.0))
            .collect();
        let total: f64 = weights.iter().sum();
        let n = self.arms.len() as f64;
        let gamma = self.config.gamma;
        weights
            .iter()
            .map(|w| {
                let exploit = if total > 0.0 { w / total } else { 1.0 / n };
                (1.0 - gamma) * exploit + gamma / n
            })
            .collect()
    }

    /// Choose an arm. During bootstrap the least-asked arm (with positive
    /// gain, if any) is chosen round-robin; afterwards, a weighted draw.
    pub fn choose(&self, gains: &[f64], rng: &mut StdRng) -> InterfaceKind {
        if self.in_bootstrap() {
            // Least-asked arm with an available question, else least-asked.
            let available: Vec<usize> = (0..self.arms.len()).filter(|&i| gains[i] > 0.0).collect();
            let pool: Vec<usize> = if available.is_empty() {
                (0..self.arms.len()).collect()
            } else {
                available
            };
            let &arm = pool
                .iter()
                .min_by_key(|&&i| self.asked.get(&self.arms[i]).copied().unwrap_or(0))
                .expect("non-empty pool");
            return self.arms[arm];
        }
        let p = self.probabilities(gains);
        let mut draw: f64 = rng.gen();
        for (i, &pi) in p.iter().enumerate() {
            if draw < pi {
                return self.arms[i];
            }
            draw -= pi;
        }
        *self.arms.last().expect("non-empty arms")
    }

    /// Record that a question on `arm` was asked and whether the user
    /// answered (vs. skipped) — updates r(I) (Algorithm 2 line 10).
    pub fn record(&mut self, arm: InterfaceKind, answered: bool) {
        *self.asked.entry(arm).or_insert(0) += 1;
        if answered {
            *self.answered.entry(arm).or_insert(0) += 1;
        }
    }

    /// Questions asked so far across arms.
    pub fn total_asked(&self) -> usize {
        self.asked.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn arms() -> Vec<InterfaceKind> {
        InterfaceKind::all().to_vec()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let b = Bandit::new(arms(), BanditConfig::default());
        let p = b.probabilities(&[3.0, 1.0, 2.0, 0.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        // Zero-gain arm still gets the exploration floor.
        assert!(p[3] > 0.0);
        assert!((p[3] - 0.1 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn answer_rate_tracks_skips() {
        let mut b = Bandit::new(arms(), BanditConfig::default());
        assert!((b.answer_rate(InterfaceKind::Dataset) - 0.5).abs() < 1e-9);
        b.record(InterfaceKind::Dataset, true);
        b.record(InterfaceKind::Dataset, true);
        b.record(InterfaceKind::Attribute, false);
        assert!(b.answer_rate(InterfaceKind::Dataset) > 0.7);
        assert!(b.answer_rate(InterfaceKind::Attribute) < 0.5);
    }

    #[test]
    fn bootstrap_round_robins_until_quota() {
        let mut b = Bandit::new(
            arms(),
            BanditConfig {
                gamma: 0.0,
                bootstrap_per_arm: 1,
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        assert!(b.in_bootstrap());
        let gains = [1.0; 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let arm = b.choose(&gains, &mut rng);
            seen.insert(arm);
            b.record(arm, true);
        }
        assert_eq!(seen.len(), 4, "bootstrap must visit every arm");
        assert!(!b.in_bootstrap());
    }

    #[test]
    fn gamma_one_is_uniform() {
        let b = Bandit::new(
            arms(),
            BanditConfig {
                gamma: 1.0,
                bootstrap_per_arm: 0,
            },
        );
        let p = b.probabilities(&[100.0, 0.0, 0.0, 0.0]);
        for pi in p {
            assert!((pi - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_reward_arm_is_chosen_more_often() {
        let mut b = Bandit::new(
            arms(),
            BanditConfig {
                gamma: 0.1,
                bootstrap_per_arm: 0,
            },
        );
        // Make Dataset answer-rate high, others low.
        for _ in 0..10 {
            b.record(InterfaceKind::Dataset, true);
            b.record(InterfaceKind::Attribute, false);
            b.record(InterfaceKind::DatasetPair, false);
            b.record(InterfaceKind::Summary, false);
        }
        let gains = [5.0, 5.0, 5.0, 5.0];
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts: FxHashMap<InterfaceKind, usize> = FxHashMap::default();
        for _ in 0..2000 {
            *counts.entry(b.choose(&gains, &mut rng)).or_insert(0) += 1;
        }
        let dataset = counts[&InterfaceKind::Dataset];
        for (&arm, &c) in &counts {
            if arm != InterfaceKind::Dataset {
                assert!(dataset > c, "dataset {dataset} should beat {arm:?} {c}");
            }
        }
    }

    #[test]
    fn all_zero_gains_fall_back_to_uniform() {
        let b = Bandit::new(
            arms(),
            BanditConfig {
                gamma: 0.0,
                bootstrap_per_arm: 0,
            },
        );
        let p = b.probabilities(&[0.0; 4]);
        for pi in p {
            assert!((pi - 0.25).abs() < 1e-9);
        }
    }
}
