//! VIEW-PRESENTATION — Ver's bandit-based human component (Section IV).
//!
//! After distillation there may still be hundreds of semantically ambiguous
//! candidate views ("home address" vs "work address"); only the user can
//! resolve that ambiguity. Ver asks *data questions* through four question
//! interfaces and learns which interface a given user can actually answer
//! with an Exp3-style multi-arm bandit whose reward is the question's
//! information gain (views pruned):
//!
//! * [`interface`] — the four question interfaces (dataset / attribute /
//!   dataset-pair / summary) and question generation;
//! * [`infogain`] — χ(I): the maximum candidate-set reduction a question
//!   can achieve;
//! * [`bandit`] — the Exp3-flavoured arm chooser with the paper's
//!   `p(I) = (1−γ)·w(I)/Σw + γ/|I|`, `w(I) = r(I)·χ(I)`, and the
//!   `O(log |I|)` bootstrap exploration phase;
//! * [`ranking`] — the expected-utility view ranking;
//! * [`session`] — Algorithm 2's interaction loop;
//! * [`user`] — simulated users (the substitution for the paper's 18-person
//!   IRB study; see DESIGN.md §2);
//! * [`fasttopk`] — the FastTopK overlap-ranking baseline the user study
//!   compares against;
//! * [`wordcloud`] — term summaries for the summary interface.
//!
//! Layer 3 of the crate map in the repo-root `ARCHITECTURE.md`; the
//! serving layer re-drives [`session`] loops over shared query results.

pub mod bandit;
pub mod fasttopk;
pub mod infogain;
pub mod interface;
pub mod ranking;
pub mod session;
pub mod user;
pub mod wordcloud;

pub use bandit::{Bandit, BanditConfig};
pub use fasttopk::{fasttopk_rank, simulate_scan, ScanOutcome};
pub use interface::{Answer, InterfaceKind, Prioritization, Question};
pub use session::{PresentationConfig, PresentationSession, SessionOutcome};
pub use user::{OracleUser, PersonaUser, SimulatedUser};
