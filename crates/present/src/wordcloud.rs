//! Word-cloud term extraction for the summary interface.
//!
//! The paper visualises view-group summaries as word clouds; the underlying
//! data is a term-frequency ranking over attribute names and a sample of
//! cell values.

use ver_common::fxhash::FxHashMap;
use ver_common::text::tokenize;
use ver_engine::view::View;

/// Top-`k` terms across the views' attribute names and value samples,
/// ordered by frequency (ties alphabetical). Attribute-name tokens count
/// double — schema words describe a view better than any single value.
pub fn wordcloud_terms(views: &[&View], k: usize) -> Vec<String> {
    const VALUE_SAMPLE_ROWS: usize = 20;
    let mut freq: FxHashMap<String, usize> = FxHashMap::default();
    for v in views {
        for name in v.attribute_names() {
            for tok in tokenize(&name) {
                *freq.entry(tok).or_insert(0) += 2;
            }
        }
        for col in v.table.columns() {
            for val in col.values().iter().take(VALUE_SAMPLE_ROWS) {
                if let ver_common::value::Value::Text(s) = val {
                    for tok in tokenize(s) {
                        *freq.entry(tok).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let mut terms: Vec<(String, usize)> = freq.into_iter().collect();
    terms.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    terms.into_iter().take(k).map(|(t, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::ids::ViewId;
    use ver_common::value::Value;
    use ver_engine::view::Provenance;
    use ver_store::table::TableBuilder;

    fn view(id: u32, attr: &str, values: &[&str]) -> View {
        let mut b = TableBuilder::new("v", &[attr]);
        for v in values {
            b.push_row(vec![Value::text(*v)]).unwrap();
        }
        View::new(ViewId(id), b.build(), Provenance::default())
    }

    #[test]
    fn attribute_tokens_rank_first() {
        let v = view(0, "newspaper_title", &["daily star", "morning sun"]);
        let terms = wordcloud_terms(&[&v], 4);
        assert!(terms.contains(&"newspaper".to_string()));
        assert!(terms.contains(&"title".to_string()));
        // attribute tokens (weight 2) precede single-occurrence values
        assert!(terms.iter().position(|t| t == "newspaper").unwrap() < 2);
    }

    #[test]
    fn frequency_aggregates_across_views() {
        let a = view(0, "state", &["georgia", "georgia"]);
        let b = view(1, "state", &["georgia"]);
        let terms = wordcloud_terms(&[&a, &b], 2);
        assert_eq!(terms[0], "state"); // 2+2 = 4 occurrences
        assert_eq!(terms[1], "georgia"); // 3 occurrences
    }

    #[test]
    fn k_truncates() {
        let v = view(0, "a b c d e", &[]);
        assert_eq!(wordcloud_terms(&[&v], 3).len(), 3);
    }

    #[test]
    fn empty_views_give_empty_cloud() {
        assert!(wordcloud_terms(&[], 5).is_empty());
    }
}
