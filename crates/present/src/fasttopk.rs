//! The FastTopK baseline (S4, citation 35 of the paper): overlap-scored ranking plus a simulated
//! scanning user.
//!
//! The paper's user study compares Ver's presentation against "a ranking of
//! views as produced by overlap-based ranking mechanism of FastTopK": views
//! are scored by how many query example values they contain and the user
//! manually scans the ranked list. The scan user inspects views top-down
//! with a patience budget; the study's FastTopK failures are users running
//! out of patience before reaching the target.

use serde::{Deserialize, Serialize};
use ver_common::fxhash::FxHashSet;
use ver_common::ids::ViewId;
use ver_engine::view::View;
use ver_qbe::ExampleQuery;

/// Rank views by example-overlap score, descending (ties: larger views
/// first, then by id).
pub fn fasttopk_rank(views: &[View], query: &ExampleQuery) -> Vec<(ViewId, usize)> {
    let examples: Vec<String> = query.all_example_strings();
    let mut scored: Vec<(ViewId, usize)> = views
        .iter()
        .map(|v| (v.id, overlap_score(v, &examples)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| {
                let rows = |id: ViewId| {
                    views
                        .iter()
                        .find(|v| v.id == id)
                        .map(|v| v.row_count())
                        .unwrap_or(0)
                };
                rows(b.0).cmp(&rows(a.0))
            })
            .then_with(|| a.0.cmp(&b.0))
    });
    scored
}

/// Number of distinct query example values present anywhere in the view.
pub fn overlap_score(view: &View, examples: &[String]) -> usize {
    let mut values: FxHashSet<String> = FxHashSet::default();
    for col in view.table.columns() {
        for v in col.non_null() {
            values.insert(v.normalized());
        }
    }
    examples.iter().filter(|e| values.contains(*e)).count()
}

/// Result of a simulated scan over a ranked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanOutcome {
    /// Whether the target was reached within the budget.
    pub found: bool,
    /// Views inspected (= 1-based position of the target when found,
    /// otherwise the full budget).
    pub inspected: usize,
}

/// Simulate a user scanning `ranked` top-down for `target`, giving up after
/// `budget` inspections.
pub fn simulate_scan(ranked: &[(ViewId, usize)], target: ViewId, budget: usize) -> ScanOutcome {
    for (i, &(v, _)) in ranked.iter().take(budget).enumerate() {
        if v == target {
            return ScanOutcome {
                found: true,
                inspected: i + 1,
            };
        }
    }
    ScanOutcome {
        found: false,
        inspected: budget.min(ranked.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_engine::view::Provenance;
    use ver_store::table::TableBuilder;

    fn view(id: u32, rows: &[(&str, i64)]) -> View {
        let mut b = TableBuilder::new("v", &["state", "pop"]);
        for (s, p) in rows {
            b.push_row(vec![Value::text(*s), Value::Int(*p)]).unwrap();
        }
        View::new(ViewId(id), b.build(), Provenance::default())
    }

    fn query() -> ExampleQuery {
        ExampleQuery::from_rows(&[vec!["IN", "1"], vec!["GA", "2"]]).unwrap()
    }

    #[test]
    fn overlap_counts_distinct_example_hits() {
        let v = view(0, &[("IN", 1), ("TX", 3)]);
        // examples are {in, ga, 1, 2}; view contains in and 1.
        assert_eq!(overlap_score(&v, &query().all_example_strings()), 2);
    }

    #[test]
    fn ranking_orders_by_overlap() {
        let views = vec![
            view(0, &[("TX", 3)]),            // 0 hits
            view(1, &[("IN", 1), ("GA", 2)]), // 4 hits
            view(2, &[("IN", 5)]),            // 1 hit
        ];
        let ranked = fasttopk_rank(&views, &query());
        assert_eq!(ranked[0].0, ViewId(1));
        assert_eq!(ranked[1].0, ViewId(2));
        assert_eq!(ranked[2].0, ViewId(0));
    }

    #[test]
    fn scan_finds_target_within_budget() {
        let ranked = vec![(ViewId(3), 5), (ViewId(1), 4), (ViewId(0), 2)];
        let hit = simulate_scan(&ranked, ViewId(1), 10);
        assert_eq!(
            hit,
            ScanOutcome {
                found: true,
                inspected: 2
            }
        );
        let miss = simulate_scan(&ranked, ViewId(0), 2);
        assert_eq!(
            miss,
            ScanOutcome {
                found: false,
                inspected: 2
            }
        );
    }

    #[test]
    fn scan_budget_exceeding_list_len_reports_list_len() {
        let ranked = vec![(ViewId(0), 1)];
        let miss = simulate_scan(&ranked, ViewId(9), 10);
        assert_eq!(miss.inspected, 1);
    }

    #[test]
    fn ties_broken_deterministically() {
        let views = vec![view(1, &[("IN", 1)]), view(0, &[("IN", 1)])];
        let ranked = fasttopk_rank(&views, &query());
        assert_eq!(ranked[0].0, ViewId(0), "equal score+size → lower id first");
    }
}
