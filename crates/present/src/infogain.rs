//! Information gain χ of questions.
//!
//! The reward of a question is "its expected information gain, defined as
//! the maximum number of irrelevant views that are pruned if the user
//! answers q" (Section IV-A). For each interface we compute the gain of its
//! best question against the current candidate set.

use crate::interface::Question;

/// Maximum number of views an answer to `q` can prune from a candidate set
/// of size `n`.
pub fn info_gain(q: &Question, n: usize) -> usize {
    match q {
        // Yes → every other view is pruned; No → one view pruned.
        Question::Dataset { .. } => n.saturating_sub(1),
        // Yes prunes views lacking the attribute; No prunes those with it.
        Question::Attribute { with_attribute, .. } => {
            let with = with_attribute.len();
            with.max(n.saturating_sub(with))
        }
        // Picking a side prunes the other side's agreeing group.
        Question::DatasetPair {
            agree_a, agree_b, ..
        } => agree_a.len().max(agree_b.len()),
        // Yes prunes the complement; No prunes the group.
        Question::Summary { group, .. } => group.len().max(n.saturating_sub(group.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::ids::ViewId;

    fn v(i: u32) -> ViewId {
        ViewId(i)
    }

    #[test]
    fn dataset_gain_is_all_but_one() {
        let q = Question::Dataset { view: v(0) };
        assert_eq!(info_gain(&q, 10), 9);
        assert_eq!(info_gain(&q, 1), 0);
        assert_eq!(info_gain(&q, 0), 0);
    }

    #[test]
    fn attribute_gain_is_larger_side() {
        let q = Question::Attribute {
            name: "pop".into(),
            with_attribute: vec![v(0), v(1), v(2)],
        };
        assert_eq!(info_gain(&q, 10), 7);
        assert_eq!(info_gain(&q, 4), 3);
    }

    #[test]
    fn pair_gain_is_larger_agreeing_group() {
        let q = Question::DatasetPair {
            a: v(0),
            b: v(1),
            agree_a: vec![v(0), v(2), v(3)],
            agree_b: vec![v(1)],
        };
        assert_eq!(info_gain(&q, 10), 3);
    }

    #[test]
    fn summary_gain_is_larger_side() {
        let q = Question::Summary {
            terms: vec![],
            group: vec![v(0), v(1)],
        };
        assert_eq!(info_gain(&q, 10), 8);
        assert_eq!(info_gain(&q, 3), 2);
    }
}
