//! Expected-utility view ranking (Section IV-B "Ranking Views").
//!
//! After a set of answered questions `Q`, each view `D` scores
//!
//! ```text
//! score(D) = Σ_{Qi ∈ Q} s_Qi · P(D satisfies | Qi answered) · P(Qi answered)
//! ```
//!
//! where `s_Qi` is +1 when `Qi`'s answer marked `D` satisfying, −1 when it
//! marked `D` irrelevant, 0 otherwise; `P(D satisfies | Qi)` is inversely
//! proportional to the number of views the question captures; and
//! `P(Qi answered)` is the bandit's answer-rate estimate for the
//! question's interface.

use serde::{Deserialize, Serialize};
use ver_common::fxhash::FxHashMap;
use ver_common::ids::ViewId;

/// The effect of one answered question, recorded for ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnsweredQuestion {
    /// Views the answer marked satisfying (`s = +1`).
    pub approved: Vec<ViewId>,
    /// Views the answer marked irrelevant (`s = −1`).
    pub rejected: Vec<ViewId>,
    /// `P(Q answered)` at ask time (the interface's answer rate).
    pub answer_prob: f64,
}

/// Cumulative utility scores over a set of answered questions.
pub fn utility_scores(history: &[AnsweredQuestion]) -> FxHashMap<ViewId, f64> {
    let mut scores: FxHashMap<ViewId, f64> = FxHashMap::default();
    for q in history {
        if !q.approved.is_empty() {
            let p_sat = 1.0 / q.approved.len() as f64;
            for &v in &q.approved {
                *scores.entry(v).or_insert(0.0) += p_sat * q.answer_prob;
            }
        }
        if !q.rejected.is_empty() {
            let p_sat = 1.0 / q.rejected.len() as f64;
            for &v in &q.rejected {
                *scores.entry(v).or_insert(0.0) -= p_sat * q.answer_prob;
            }
        }
    }
    scores
}

/// Rank `alive` views by utility (descending), breaking ties by the
/// supplied base score (e.g. join score), then by id for determinism.
pub fn rank_views(
    alive: &[ViewId],
    history: &[AnsweredQuestion],
    base_score: impl Fn(ViewId) -> f64,
) -> Vec<(ViewId, f64)> {
    let scores = utility_scores(history);
    let mut out: Vec<(ViewId, f64)> = alive
        .iter()
        .map(|&v| (v, scores.get(&v).copied().unwrap_or(0.0)))
        .collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then_with(|| {
                base_score(b.0)
                    .partial_cmp(&base_score(a.0))
                    .expect("finite base scores")
            })
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ViewId {
        ViewId(i)
    }

    #[test]
    fn approvals_raise_rejections_lower() {
        let history = vec![AnsweredQuestion {
            approved: vec![v(0), v(1)],
            rejected: vec![v(2)],
            answer_prob: 1.0,
        }];
        let s = utility_scores(&history);
        assert!(s[&v(0)] > 0.0);
        assert!((s[&v(0)] - 0.5).abs() < 1e-9, "1/|approved| = 0.5");
        assert!((s[&v(2)] + 1.0).abs() < 1e-9, "1/|rejected| = 1.0");
    }

    #[test]
    fn capture_size_dilutes_signal() {
        // A question approving 10 views says less about each than one
        // approving 2.
        let broad = AnsweredQuestion {
            approved: (0..10).map(v).collect(),
            rejected: vec![],
            answer_prob: 1.0,
        };
        let narrow = AnsweredQuestion {
            approved: vec![v(0), v(1)],
            rejected: vec![],
            answer_prob: 1.0,
        };
        let sb = utility_scores(&[broad]);
        let sn = utility_scores(&[narrow]);
        assert!(sn[&v(0)] > sb[&v(0)]);
    }

    #[test]
    fn answer_probability_weights_questions() {
        let confident = AnsweredQuestion {
            approved: vec![v(0)],
            rejected: vec![],
            answer_prob: 0.9,
        };
        let shaky = AnsweredQuestion {
            approved: vec![v(1)],
            rejected: vec![],
            answer_prob: 0.2,
        };
        let s = utility_scores(&[confident, shaky]);
        assert!(s[&v(0)] > s[&v(1)]);
    }

    #[test]
    fn rank_orders_and_breaks_ties_deterministically() {
        let history = vec![AnsweredQuestion {
            approved: vec![v(1)],
            rejected: vec![v(2)],
            answer_prob: 1.0,
        }];
        let ranked = rank_views(&[v(0), v(1), v(2), v(3)], &history, |id| {
            if id == v(3) {
                0.9
            } else {
                0.1
            }
        });
        assert_eq!(ranked[0].0, v(1)); // approved
        assert_eq!(ranked[1].0, v(3)); // neutral, higher base score
        assert_eq!(ranked[2].0, v(0)); // neutral, lower base
        assert_eq!(ranked[3].0, v(2)); // rejected
    }

    #[test]
    fn scores_accumulate_across_questions() {
        let q1 = AnsweredQuestion {
            approved: vec![v(0)],
            rejected: vec![],
            answer_prob: 1.0,
        };
        let s = utility_scores(&[q1.clone(), q1]);
        assert!((s[&v(0)] - 2.0).abs() < 1e-9);
    }
}
