//! Property-based tests for the bandit and ranking maths.

use proptest::prelude::*;
use ver_common::ids::ViewId;
use ver_present::bandit::{Bandit, BanditConfig};
use ver_present::infogain::info_gain;
use ver_present::interface::{InterfaceKind, Question};
use ver_present::ranking::{rank_views, utility_scores, AnsweredQuestion};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn probabilities_are_a_distribution_with_floor(
        gains in prop::collection::vec(0.0f64..100.0, 4),
        gamma in 0.0f64..1.0,
        answered in prop::collection::vec(any::<bool>(), 0..30),
    ) {
        let mut bandit = Bandit::new(
            InterfaceKind::all().to_vec(),
            BanditConfig { gamma, bootstrap_per_arm: 0 },
        );
        for (i, &a) in answered.iter().enumerate() {
            bandit.record(InterfaceKind::all()[i % 4], a);
        }
        let p = bandit.probabilities(&gains);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        for &pi in &p {
            prop_assert!(pi >= gamma / 4.0 - 1e-12, "floor violated: {pi} < γ/4");
            prop_assert!(pi <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn answer_rate_is_a_probability(
        records in prop::collection::vec(any::<bool>(), 0..50),
    ) {
        let mut bandit = Bandit::new(
            InterfaceKind::all().to_vec(),
            BanditConfig::default(),
        );
        for &a in &records {
            bandit.record(InterfaceKind::Dataset, a);
        }
        let r = bandit.answer_rate(InterfaceKind::Dataset);
        prop_assert!(r > 0.0 && r < 1.0, "Laplace smoothing keeps r in (0,1): {r}");
    }

    #[test]
    fn info_gain_is_bounded_by_candidate_count(
        n in 0usize..100,
        with in prop::collection::vec(0u32..100, 0..40),
    ) {
        let views: Vec<ViewId> = with.iter().map(|&i| ViewId(i)).collect();
        let questions = [
            Question::Dataset { view: ViewId(0) },
            Question::Attribute { name: "a".into(), with_attribute: views.clone() },
            Question::Summary { terms: vec![], group: views.clone() },
        ];
        for q in &questions {
            let g = info_gain(q, n);
            prop_assert!(g <= n.max(views.len()), "gain {g} exceeds candidates");
        }
    }

    #[test]
    fn utility_scores_are_bounded_by_history_weight(
        approvals in prop::collection::vec(0u32..20, 1..10),
        prob in 0.0f64..1.0,
    ) {
        let q = AnsweredQuestion {
            approved: approvals.iter().map(|&i| ViewId(i)).collect(),
            rejected: vec![],
            answer_prob: prob,
        };
        let scores = utility_scores(std::slice::from_ref(&q));
        for (_, s) in scores {
            prop_assert!(s >= 0.0);
            prop_assert!(s <= prob + 1e-9, "score {s} exceeds answer prob {prob}");
        }
    }

    #[test]
    fn ranking_is_a_permutation_of_alive(
        alive in prop::collection::vec(0u32..50, 1..20),
    ) {
        let mut alive: Vec<ViewId> = alive.into_iter().map(ViewId).collect();
        alive.sort_unstable();
        alive.dedup();
        let ranked = rank_views(&alive, &[], |_| 0.0);
        prop_assert_eq!(ranked.len(), alive.len());
        let mut ids: Vec<ViewId> = ranked.iter().map(|&(v, _)| v).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, alive);
    }
}
