//! Open-data scenario from the paper's introduction: an analyst needs the
//! population of a handful of countries, but the portal hosts hundreds of
//! overlapping tables with contradictory census numbers.
//!
//! Demonstrates the 4C categories: the pipeline detects compatible
//! duplicates, unions complementary coverage, and *surfaces* the
//! contradictions instead of silently picking a side.
//!
//! ```text
//! cargo run -p ver-core --example open_data_portal
//! ```

use ver_core::{Ver, VerConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_distill::strategy::{contradiction_steps, distill_counts, CaseChoice};
use ver_qbe::{ExampleQuery, ViewSpec};

fn main() -> ver_common::error::Result<()> {
    // A WDC-like web-table corpus: population tables from disagreeing
    // sources, state lists with partial coverage, and filler noise.
    let catalog = generate_wdc(&WdcConfig {
        n_tables: 80,
        n_population_sources: 4,
        ..Default::default()
    })?;
    println!(
        "corpus: {} tables, {} columns, {} rows",
        catalog.table_count(),
        catalog.column_count(),
        catalog.total_rows()
    );

    let ver = Ver::build(catalog, VerConfig::fast())?;
    println!("joinable column pairs: {}", ver.index().joinable_pairs());

    // "Find views containing population of any of these countries."
    let query = ExampleQuery::from_rows(&[
        vec!["Philippines", "2644000"],
        vec!["Vietnam", "3055000"],
        vec!["Germany", "3466000"],
    ])?;
    let result = ver.run(&ViewSpec::Qbe(query))?;

    let counts = distill_counts(&result.views, &result.distill);
    println!("\nview funnel (Table IV shape):");
    println!("  original views : {}", counts.original);
    println!("  after C1       : {} (compatible deduped)", counts.c1);
    println!("  after C2       : {} (contained pruned)", counts.c2);
    println!(
        "  C3 best-case   : {} (complementary unioned)",
        counts.c3_best
    );

    println!(
        "\ncontradictions detected: {}",
        result.distill.contradictions.len()
    );
    for c in result.distill.contradictions.iter().take(3) {
        println!(
            "  key {:?}: {} views split into {} camps (discrimination {})",
            c.key.0,
            c.view_count(),
            c.groups.len(),
            c.discrimination()
        );
    }

    let best = contradiction_steps(&result.distill, CaseChoice::Best, 5);
    let worst = contradiction_steps(&result.distill, CaseChoice::Worst, 5);
    println!("\nviews left per contradiction-resolution step (Fig. 2 shape):");
    println!("  best case : {best:?}");
    println!("  worst case: {worst:?}");
    Ok(())
}
