//! Quickstart: build a tiny pathless collection, index it, and discover a
//! project-join view by example.
//!
//! ```text
//! cargo run -p ver-core --example quickstart
//! ```

use ver_core::{Ver, VerConfig};
use ver_qbe::{ExampleQuery, ViewSpec};
use ver_store::catalog::TableCatalog;
use ver_store::table::TableBuilder;

fn main() -> ver_common::error::Result<()> {
    // A pathless table collection: no PK/FK information anywhere.
    let mut catalog = TableCatalog::new();

    let mut airports = TableBuilder::new("airports", &["iata", "state"]);
    for (code, state) in [
        ("IND", "Indiana"),
        ("ATL", "Georgia"),
        ("ORD", "Illinois"),
        ("BDL", "Connecticut"),
        ("RIC", "Virginia"),
    ] {
        airports.push_row(vec![code.into(), state.into()])?;
    }
    catalog.add_table(airports.build())?;

    let mut populations = TableBuilder::new("state_population", &["state", "population"]);
    for (state, pop) in [
        ("Indiana", 6_800_000i64),
        ("Georgia", 10_700_000),
        ("Illinois", 12_600_000),
        ("Connecticut", 3_600_000),
        ("Virginia", 8_600_000),
    ] {
        populations.push_row(vec![state.into(), pop.into()])?;
    }
    catalog.add_table(populations.build())?;

    // Offline: profile columns, sketch MinHash signatures, infer the join
    // hypergraph. Online: ask by example — two columns, two example rows.
    let ver = Ver::build(catalog, VerConfig::fast())?;
    let query = ExampleQuery::from_rows(&[vec!["IND", "6800000"], vec!["ATL", "10700000"]])?;
    let result = ver.run(&ViewSpec::Qbe(query))?;

    println!("candidate views: {}", result.views.len());
    println!("after distillation: {}", result.distill.survivors_c2.len());
    for (view_id, score) in &result.ranked {
        let view = result
            .views
            .iter()
            .find(|v| v.id == *view_id)
            .expect("ranked view");
        println!(
            "\n#{view_id} (overlap {score}) — attributes {:?}, {} rows, {} join hop(s)",
            view.attribute_names(),
            view.row_count(),
            view.provenance.hops(),
        );
        for row in view.table.iter_rows().take(3) {
            let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
            println!("   {}", cells.join(" | "));
        }
    }
    Ok(())
}
