//! ML-engineer scenario from the paper's introduction: assemble a training
//! table by joining measurement labels with compound features scattered
//! across a bio-assay database — without any join-path metadata.
//!
//! ```text
//! cargo run -p ver-core --example ml_training_set
//! ```

use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_qbe::{ExampleQuery, ViewSpec};

fn main() -> ver_common::error::Result<()> {
    // A ChEMBL-like corpus: 24 relational tables, keys unlabelled.
    let catalog = generate_chembl(&ChemblConfig {
        n_compounds: 120,
        n_tables: 24,
        seed: 2024,
    })?;
    println!(
        "corpus: {} tables / {} columns / {} rows (no PK-FK metadata)",
        catalog.table_count(),
        catalog.column_count(),
        catalog.total_rows()
    );

    let ver = Ver::build(catalog, VerConfig::fast())?;

    // The engineer knows a couple of compounds and a plausible label value;
    // they want (compound_name, standard_value) training pairs.
    let c0 = ver
        .catalog()
        .table_by_name("compounds")
        .expect("generator emits compounds")
        .cell(0, 1)
        .expect("cell exists")
        .to_string();
    let c1 = ver
        .catalog()
        .table_by_name("compounds")
        .expect("generator emits compounds")
        .cell(1, 1)
        .expect("cell exists")
        .to_string();
    println!("\nexample compounds: {c0}, {c1}");

    let query = ExampleQuery::from_rows(&[vec![c0.as_str()], vec![c1.as_str()]])?;
    // Add the label column by attribute hint — the engineer has no example
    // activity value memorised.
    let mut columns = query.columns;
    columns.push(
        ver_qbe::QueryColumn::of_values(vec![ver_common::value::Value::Null])
            .named("standard_value"),
    );
    let query = ExampleQuery::new(columns)?;

    let result = ver.run(&ViewSpec::Qbe(query))?;
    println!(
        "\ncandidates: {} views → {} after distillation",
        result.views.len(),
        result.distill.survivors_c2.len()
    );

    match result.ranked.first() {
        Some((view_id, _)) => {
            let view = result
                .views
                .iter()
                .find(|v| v.id == *view_id)
                .expect("ranked view exists");
            println!(
                "top view: {:?} with {} training rows via {} join hop(s)",
                view.attribute_names(),
                view.row_count(),
                view.provenance.hops()
            );
            for row in view.table.iter_rows().take(5) {
                let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
                println!("   {}", cells.join(" | "));
            }
        }
        None => println!("no view satisfied the query — try more examples"),
    }
    Ok(())
}
