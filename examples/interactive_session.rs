//! Interactive view presentation: the bandit asks questions through four
//! interfaces, adapts to a user who can only answer some of them, and
//! narrows hundreds of candidates to the one the user wants.
//!
//! The "user" here is a simulated persona (the paper's study had 18 human
//! participants; see DESIGN.md §2 for the substitution).
//!
//! ```text
//! cargo run -p ver-core --example interactive_session
//! ```

use ver_common::fxhash::FxHashMap;
use ver_core::{Ver, VerConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_present::{InterfaceKind, OracleUser, PersonaUser, SessionOutcome};
use ver_qbe::{ExampleQuery, ViewSpec};

fn main() -> ver_common::error::Result<()> {
    let catalog = generate_wdc(&WdcConfig {
        n_tables: 70,
        ..Default::default()
    })?;
    let ver = Ver::build(catalog, VerConfig::fast())?;

    let spec = ViewSpec::Qbe(ExampleQuery::from_rows(&[
        vec!["Philippines", "2644000"],
        vec!["Vietnam", "3055000"],
    ])?);

    // Run the technical pipeline once to see what the user faces.
    let result = ver.run(&spec)?;
    println!(
        "{} candidate views survive distillation — too many to eyeball",
        result.distill.survivors_c2.len()
    );
    let target = *result
        .distill
        .survivors_c2
        .last()
        .expect("population query yields candidates");
    println!("(the simulated user secretly wants view {target})");

    // User A: answers anything (oracle).
    let mut oracle = OracleUser::new(target);
    let (_, outcome) = ver.run_interactive(&spec, &mut oracle)?;
    report("oracle user", &outcome);

    // User B: can answer dataset and pair questions, never summaries.
    let mut probs = FxHashMap::default();
    probs.insert(InterfaceKind::Dataset, 0.9);
    probs.insert(InterfaceKind::Attribute, 0.5);
    probs.insert(InterfaceKind::DatasetPair, 0.9);
    probs.insert(InterfaceKind::Summary, 0.05);
    let mut persona = PersonaUser::with_profile(target, probs, 0.02, 7);
    let (_, outcome) = ver.run_interactive(&spec, &mut persona)?;
    report("selective persona", &outcome);

    // User C: barely engages — the session must degrade gracefully.
    let mut shy = PersonaUser::uniform(target, 0.15, 0.0, 11);
    let (_, outcome) = ver.run_interactive(&spec, &mut shy)?;
    report("shy persona", &outcome);
    Ok(())
}

fn report(label: &str, outcome: &SessionOutcome) {
    match outcome {
        SessionOutcome::Found { view, interactions } => {
            println!("{label}: found {view} after {interactions} interaction(s)");
        }
        SessionOutcome::Exhausted {
            ranked,
            interactions,
        } => {
            println!(
                "{label}: gave up after {interactions} interaction(s); \
                 top-ranked candidates: {:?}",
                &ranked[..ranked.len().min(3)]
            );
        }
    }
}
